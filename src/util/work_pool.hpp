/**
 * @file
 * Shared work pool for every level of parallelism in the simulator.
 *
 * Sweep-level jobs (driver::SweepDriver), phase-level fan-out inside
 * one inference (gcn::executePlan) and cluster-level co-simulation
 * rounds (core::GrowSim's epoch mode) all draw workers from one
 * process-wide pool, so nesting them composes without oversubscribing
 * the machine: an inner fan-out never spawns threads, it only enqueues
 * claim tickets that idle pool workers may pick up.
 *
 * Deadlock freedom under nesting comes from caller participation:
 * runAll() has the calling thread claim and execute tasks of its own
 * batch until none are left, then wait for the stragglers claimed by
 * pool workers. A worker executing an outer task that fans out again
 * drains the inner batch the same way, so no thread ever blocks on
 * work that only itself could perform.
 *
 * Hot-path mechanics (epoch-mode co-simulation submits a batch per
 * round, so submission cost is on the simulator's critical path):
 *  - Batch objects are pooled and reused across runAll() calls; a
 *    steady-state round allocates nothing.
 *  - A batch is announced as ONE ticket carrying an invite count;
 *    takers count it down. The old design queued one shared_ptr copy
 *    per helper.
 *  - Idle workers park on per-worker futex slots and runAll() wakes
 *    exactly the helpers it wants (targeted wakeup); the old central
 *    notify_all woke the whole pool to race for tickets.
 *  - Completion is a two-level tree of counters: tasks retire into
 *    per-leaf cachelines and only the last task of a leaf touches the
 *    root the caller parks on -- no per-batch mutex/condvar.
 *  - Worker threads are placed node-major/compact on the host CPUs
 *    (util/topology.hpp) when the machine is wide enough to give each
 *    worker its own CPU; co-simulating lanes share read-only operands,
 *    so same-socket placement keeps them in one LLC.
 *
 * Determinism: tasks of one batch must be independent (they write to
 * disjoint slots); under that contract results are bit-identical for
 * every pool width and max_parallel value, which is what the
 * threads=N reproducibility guarantee of the parallel co-simulation
 * rests on (see DESIGN.md "Parallel co-simulation").
 */
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace grow::util {

/**
 * Validate a user-supplied `threads=` value: rejects 0 (a silent
 * "spawn nothing" footgun) and values above 4x the hardware
 * concurrency (almost certainly a typo; oversubscribing a cycle-level
 * simulator that hard only loses throughput). fatal() on violation.
 */
uint32_t checkedThreadCount(int64_t requested);

/**
 * Surface the first captured task exception from a runAll() result,
 * if any (first-wins: errors come back in task order, so the rethrown
 * one is deterministic regardless of completion order).
 */
void rethrowFirstError(const std::vector<std::exception_ptr> &errors);

/**
 * Deterministic data-parallel loop on the shared pool: split [0, n)
 * into contiguous chunks and run `fn(begin, end, chunk)` for each, at
 * most @p threads concurrently. Chunk boundaries depend only on (n,
 * threads-independent kParallelForChunksPerWorker cap) -- NOT on the
 * thread count -- so a stage that writes disjoint per-index slots and
 * folds per-chunk partials in ascending chunk order is bit-identical
 * for every @p threads value; that canonical reduction order is what
 * the workload-build pipeline's determinism guarantee rests on.
 *
 * threads <= 1 (or a trivially small n) degenerates to one inline call
 * on the caller -- same chunking, zero pool traffic -- so serial and
 * parallel runs execute the identical chunk sequence.
 */
void parallelFor(uint64_t n, uint32_t threads,
                 const std::function<void(uint64_t begin, uint64_t end,
                                          uint32_t chunk)> &fn);

/** Number of parallelFor chunks for @p n items (thread-independent). */
uint32_t parallelForChunks(uint64_t n);

class WorkPool
{
  public:
    /** @p workers persistent worker threads (>= 0; 0 means the caller
     *  of runAll() does all the work itself). */
    explicit WorkPool(uint32_t workers);

    /**
     * Shutdown ordering: finish every detached task (drainDetached()),
     * then stop and join the workers. Workers honour the stop flag
     * only once no ticket or detached work is pending, so a pool with
     * parked workers drains cleanly -- nothing submitted before the
     * destructor began is ever dropped.
     */
    ~WorkPool();

    WorkPool(const WorkPool &) = delete;
    WorkPool &operator=(const WorkPool &) = delete;

    /** The process-wide pool, lazily created with
     *  hardware_concurrency() - 1 workers (the caller thread is the
     *  +1: runAll() always participates). */
    static WorkPool &shared();

    uint32_t numWorkers() const
    {
        return static_cast<uint32_t>(workers_.size());
    }

    /**
     * Execute every task; the calling thread participates until the
     * batch is exhausted, then blocks for in-flight stragglers. At
     * most @p max_parallel tasks run concurrently (0 = pool width +
     * caller; 1 = serial on the caller, in task order). Returns one
     * exception_ptr slot per task (null on success) in task order --
     * a throwing task never cancels its siblings.
     */
    std::vector<std::exception_ptr>
    runAll(std::vector<std::function<void()>> tasks,
           uint32_t max_parallel = 0);

    /**
     * Fire-and-forget submission: hand @p task to an idle pool worker
     * without blocking the caller (the serving daemon's dispatch path;
     * runAll() callers keep participating as before). Returns false --
     * and does NOT take the task -- when the pool has no workers or is
     * shutting down, in which case the caller must run the task inline
     * itself. A detached task that throws is logged and swallowed:
     * there is no caller left to rethrow into. Detached tasks may
     * themselves call runAll() (nested fan-out composes as usual).
     */
    bool trySubmit(std::function<void()> task);

    /**
     * Workers currently parked with nothing to do -- an O(1) capacity
     * hint for admission control (a racy snapshot, not a reservation:
     * the value may be stale by the time the caller acts on it).
     */
    uint32_t idleWorkers() const;

    /** Detached tasks submitted but not yet finished. */
    uint64_t detachedPending() const;

    /**
     * Block until every detached task submitted so far has finished
     * (graceful-shutdown path: stop submitting, drainDetached(), flush
     * reports). runAll() batches need no draining -- their caller
     * already blocks for them.
     */
    void drainDetached();

  private:
    struct Batch;

    /** Claim-and-execute loop shared by workers and callers. */
    static void help(Batch &batch);

    void workerLoop(uint32_t id);

    struct Impl;
    std::unique_ptr<Impl> impl_;
    std::vector<std::thread> workers_;
};

} // namespace grow::util
