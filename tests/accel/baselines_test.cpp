#include <gtest/gtest.h>

#include "accel/gamma.hpp"
#include "accel/matraptor.hpp"
#include "sparse/convert.hpp"
#include "sparse/reference_gemm.hpp"
#include "util/random.hpp"

namespace grow::accel {
namespace {

sparse::CsrMatrix
powerLawish(uint32_t n, double density, uint64_t seed)
{
    Rng rng(seed);
    return sparse::randomCsr(n, n, density, rng);
}

TEST(MatRaptor, NoReuseMeansTrafficPerNonZero)
{
    MatRaptorSim sim((MatRaptorConfig()));
    auto lhs = powerLawish(500, 0.02, 1);
    SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 64;
    auto r = sim.run(p, SimOptions{});
    // Every non-zero fetches a full CSR fiber (>= 64*12 bytes).
    Bytes fiber = 64 * 12 + 8;
    Bytes expect = lhs.nnz() * ((fiber + 63) / 64 * 64);
    EXPECT_EQ(r.traffic.readBytes[static_cast<size_t>(
                  mem::TrafficClass::DenseRow)],
              expect);
}

TEST(MatRaptor, OutputWrittenCompressed)
{
    MatRaptorSim sim((MatRaptorConfig()));
    auto lhs = powerLawish(200, 0.05, 2);
    SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 16;
    auto r = sim.run(p, SimOptions{});
    // 12 B per output element beats the dense engines' 8 B.
    Bytes minOut = static_cast<Bytes>(200) * 16 * 12;
    EXPECT_GE(r.traffic.writeBytes[static_cast<size_t>(
                  mem::TrafficClass::OutputWrite)],
              minOut);
}

TEST(Gamma, FiberCacheCapturesReuse)
{
    GammaSim sim((GammaConfig()));
    auto lhs = powerLawish(400, 0.05, 3);
    SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 32;
    auto r = sim.run(p, SimOptions{});
    EXPECT_GT(r.cacheHits, 0u);
    EXPECT_GT(r.cacheMisses, 0u);
    // All 400 distinct rows fit in the fiber cache -> only compulsory
    // misses.
    EXPECT_EQ(r.cacheMisses, 400u);
}

TEST(Gamma, LessTrafficThanMatRaptor)
{
    // Sec. VII-H: GAMMA's fiber cache saves vs MatRaptor's no-cache
    // design, but both pay the sparse-output format tax.
    auto lhs = powerLawish(1000, 0.01, 4);
    SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 64;
    auto rm = MatRaptorSim((MatRaptorConfig())).run(p, SimOptions{});
    auto rg = GammaSim((GammaConfig())).run(p, SimOptions{});
    EXPECT_LT(rg.totalTrafficBytes(), rm.totalTrafficBytes());
    EXPECT_LE(rg.cycles, rm.cycles);
}

TEST(Gamma, CapacityPressureRaisesMisses)
{
    auto lhs = powerLawish(3000, 0.01, 5);
    SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 64;
    GammaConfig big;
    big.fiberCacheBytes = 8 * 1024 * 1024;
    GammaConfig small;
    small.fiberCacheBytes = 64 * 1024;
    auto rb = GammaSim(big).run(p, SimOptions{});
    auto rs = GammaSim(small).run(p, SimOptions{});
    EXPECT_GT(rs.cacheMisses, rb.cacheMisses);
}

TEST(Baselines, FunctionalMatchesReference)
{
    auto lhs = powerLawish(80, 0.1, 6);
    Rng rng(7);
    auto rhs = sparse::randomDense(80, 12, rng);
    SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 12;
    p.rhs = &rhs;
    SimOptions opt;
    opt.functional = true;
    auto golden = sparse::referenceSpMM(lhs, rhs);

    auto rm = MatRaptorSim((MatRaptorConfig())).run(p, opt);
    ASSERT_TRUE(rm.hasOutput);
    EXPECT_LT(sparse::DenseMatrix::maxAbsDiff(golden, rm.output), 1e-12);

    auto rg = GammaSim((GammaConfig())).run(p, opt);
    ASSERT_TRUE(rg.hasOutput);
    EXPECT_LT(sparse::DenseMatrix::maxAbsDiff(golden, rg.output), 1e-12);
}

} // namespace
} // namespace grow::accel
