/**
 * @file
 * Epoch-based DRAM arbitration: replica responses, canonical replay
 * order, traffic preservation and schedule-independence (the property
 * the cluster-parallel co-simulation's determinism rests on).
 */
#include <gtest/gtest.h>

#include "accel/dram_arbiter.hpp"
#include "mem/dram.hpp"

namespace grow::accel {
namespace {

using mem::TrafficClass;

mem::DramConfig
testConfig()
{
    mem::DramConfig cfg;
    cfg.bandwidthGBps = 100.0; // non-integral bytes/cycle: residual active
    return cfg;
}

/** Line-rounding helper mirroring DramModel::lineAligned. */
Bytes
roundedTraffic(Bytes b)
{
    return ((b + kDramLineBytes - 1) / kDramLineBytes) * kDramLineBytes;
}

TEST(DramModelClone, SimpleDramCloneAnswersLikeTheOriginal)
{
    mem::SimpleDram a(testConfig());
    // Accumulate some channel state (incl. a fractional residual).
    a.read(0, 0, 100, TrafficClass::SparseStream);
    a.write(5, 64, 200, TrafficClass::OutputWrite);

    auto b = a.cloneTimingState();
    // Fresh traffic accounting on the clone, same timing behaviour.
    EXPECT_EQ(b->traffic().total(), 0u);
    for (Cycle t : {Cycle{7}, Cycle{8}, Cycle{100}}) {
        EXPECT_EQ(a.read(t, 0, 96, TrafficClass::DenseRow),
                  b->read(t, 0, 96, TrafficClass::DenseRow));
    }
}

TEST(DramModelClone, BankedDramCloneAnswersLikeTheOriginal)
{
    mem::BankedDram a(testConfig(), mem::BankTiming{});
    a.read(0, 0, 4096, TrafficClass::DenseRow);
    a.read(10, 1 << 20, 128, TrafficClass::SparseStream);
    auto b = a.cloneTimingState();
    EXPECT_EQ(a.read(20, 512, 256, TrafficClass::DenseRow),
              b->read(20, 512, 256, TrafficClass::DenseRow));
    EXPECT_EQ(a.write(30, 4096, 64, TrafficClass::OutputWrite),
              b->write(30, 4096, 64, TrafficClass::OutputWrite));
}

TEST(EpochArbiter, SingleLaneSingleEpochMatchesDirectDevice)
{
    // One lane, requests committed per epoch: the replica starts from
    // the canonical state each epoch and folds the lane's own calls,
    // so responses equal the unarbitrated device exactly.
    mem::SimpleDram direct(testConfig());
    mem::SimpleDram canonical(testConfig());
    EpochDramArbiter arbiter(canonical, 1);

    Cycle t = 0;
    for (int i = 0; i < 20; ++i) {
        arbiter.beginEpoch();
        Cycle d = direct.read(t, 64 * i, 100 + 13 * i,
                              TrafficClass::DenseRow);
        Cycle p = arbiter.lane(0).read(t, 64 * i, 100 + 13 * i,
                                       TrafficClass::DenseRow);
        EXPECT_EQ(d, p) << "request " << i;
        arbiter.commitEpoch();
        t = d; // issue chain like an engine would
    }
    EXPECT_EQ(direct.traffic().total(), canonical.traffic().total());
    EXPECT_EQ(direct.busyCycles(), canonical.busyCycles());
    EXPECT_EQ(arbiter.committedRequests(), 20u);
}

TEST(EpochArbiter, IssueOrderWithinAnEpochDoesNotMatter)
{
    // Two lanes issue the same per-lane request streams; between the
    // two arbiters the lanes take turns in opposite order. Responses
    // and the canonical device state must be bit-identical -- this is
    // exactly why worker scheduling cannot perturb the simulation.
    auto runInterleaved = [](bool lane0_first, mem::SimpleDram &canonical,
                             std::vector<Cycle> &responses) {
        EpochDramArbiter arbiter(canonical, 2);
        for (int epoch = 0; epoch < 5; ++epoch) {
            arbiter.beginEpoch();
            arbiter.lane(0).setCluster(0);
            arbiter.lane(1).setCluster(1);
            auto issueLane = [&](uint32_t lane) {
                for (int i = 0; i < 4; ++i) {
                    responses.push_back(arbiter.lane(lane).read(
                        epoch * 100 + i, lane * 4096 + 64 * i,
                        90 + 10 * lane + i, TrafficClass::DenseRow));
                }
            };
            if (lane0_first) {
                issueLane(0);
                issueLane(1);
            } else {
                issueLane(1);
                issueLane(0);
            }
            arbiter.commitEpoch();
        }
    };

    mem::SimpleDram canonA(testConfig());
    mem::SimpleDram canonB(testConfig());
    std::vector<Cycle> respA, respB;
    runInterleaved(true, canonA, respA);
    runInterleaved(false, canonB, respB);

    // Sort per call site: respB interleaves lanes differently, so
    // compare per-lane subsequences. Lane 0's responses are at fixed
    // positions in each variant; reconstruct and compare.
    ASSERT_EQ(respA.size(), respB.size());
    std::vector<Cycle> lane0A, lane1A, lane0B, lane1B;
    for (size_t e = 0; e < 5; ++e) {
        for (size_t i = 0; i < 4; ++i) {
            lane0A.push_back(respA[e * 8 + i]);
            lane1A.push_back(respA[e * 8 + 4 + i]);
            lane1B.push_back(respB[e * 8 + i]);
            lane0B.push_back(respB[e * 8 + 4 + i]);
        }
    }
    EXPECT_EQ(lane0A, lane0B);
    EXPECT_EQ(lane1A, lane1B);
    EXPECT_EQ(canonA.traffic().total(), canonB.traffic().total());
    EXPECT_EQ(canonA.busyCycles(), canonB.busyCycles());
}

TEST(EpochArbiter, CommitReplaysEveryRecordedByte)
{
    mem::SimpleDram canonical(testConfig());
    EpochDramArbiter arbiter(canonical, 3);
    arbiter.beginEpoch();
    Bytes lineSum = 0;
    for (uint32_t lane = 0; lane < 3; ++lane) {
        arbiter.lane(lane).setCluster(10 + lane);
        for (int i = 0; i < 3; ++i) {
            Bytes b = 30 + 64 * lane + i;
            arbiter.lane(lane).read(i, 0, b, TrafficClass::DenseRow);
            lineSum += roundedTraffic(b);
        }
    }
    // Nothing reaches the canonical device before the commit.
    EXPECT_EQ(canonical.traffic().total(), 0u);
    arbiter.commitEpoch();
    EXPECT_EQ(canonical.traffic().total(), lineSum);
    EXPECT_EQ(arbiter.committedRequests(), 9u);
}

TEST(EpochArbiter, CrossLaneBacklogArrivesAtTheNextEpoch)
{
    // A saturating burst from lane 0 in epoch 1 must delay lane 1's
    // responses in epoch 2 (the replicas snapshot the post-commit
    // canonical state), but not within epoch 1.
    mem::SimpleDram canonical(testConfig());
    EpochDramArbiter arbiter(canonical, 2);

    arbiter.beginEpoch();
    Cycle lone = arbiter.lane(1).read(0, 0, 64, TrafficClass::DenseRow);
    arbiter.lane(0).read(0, 0, 1 << 20, TrafficClass::HdnPreload);
    arbiter.commitEpoch();

    arbiter.beginEpoch();
    Cycle delayed = arbiter.lane(1).read(0, 0, 64,
                                         TrafficClass::DenseRow);
    arbiter.commitEpoch();
    EXPECT_GT(delayed, lone);
}

TEST(EpochArbiter, UsageErrorsPanic)
{
    mem::SimpleDram canonical(testConfig());
    EpochDramArbiter arbiter(canonical, 1);
    // Request outside an open epoch.
    EXPECT_THROW(arbiter.lane(0).read(0, 0, 64, TrafficClass::DenseRow),
                 std::logic_error);
    arbiter.beginEpoch();
    arbiter.lane(0).read(0, 0, 64, TrafficClass::DenseRow);
    // beginEpoch with uncommitted requests.
    EXPECT_THROW(arbiter.beginEpoch(), std::logic_error);
}

} // namespace
} // namespace grow::accel
