/**
 * @file
 * Cross-engine functional equivalence: every cycle-level engine must
 * produce bit-identical SpDeGEMM results (they all accumulate in fp64
 * in the same row-major order), and all must match the golden model.
 * This is the keystone test that ties the cycle models to the
 * mathematics they claim to implement.
 */
#include <gtest/gtest.h>

#include <memory>

#include "accel/gamma.hpp"
#include "accel/gcnax.hpp"
#include "accel/matraptor.hpp"
#include "core/grow.hpp"
#include "sparse/convert.hpp"
#include "sparse/reference_gemm.hpp"
#include "util/random.hpp"

namespace grow::accel {
namespace {

std::unique_ptr<AcceleratorSim>
makeEngine(const std::string &name)
{
    if (name == "grow")
        return std::make_unique<core::GrowSim>(core::GrowConfig{});
    if (name == "gcnax")
        return std::make_unique<GcnaxSim>(GcnaxConfig{});
    if (name == "matraptor")
        return std::make_unique<MatRaptorSim>(MatRaptorConfig{});
    if (name == "gamma")
        return std::make_unique<GammaSim>(GammaConfig{});
    return nullptr;
}

struct Case
{
    const char *engine;
    uint32_t rows;
    uint32_t cols;
    uint32_t rhsCols;
    double density;
    bool rhsOnChip;
};

class EngineEquivalence : public ::testing::TestWithParam<Case>
{
};

TEST_P(EngineEquivalence, MatchesGoldenModel)
{
    const Case c = GetParam();
    Rng rng(c.rows * 7 + c.rhsCols);
    auto lhs = sparse::randomCsr(c.rows, c.cols, c.density, rng);
    auto rhs = sparse::randomDense(c.cols, c.rhsCols, rng);

    SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = c.rhsCols;
    p.rhs = &rhs;
    p.rhsOnChip = c.rhsOnChip;
    p.phase = c.rhsOnChip ? Phase::Combination : Phase::Aggregation;

    SimOptions opt;
    opt.functional = true;

    auto engine = makeEngine(c.engine);
    ASSERT_NE(engine, nullptr);
    auto r = engine->run(p, opt);
    ASSERT_TRUE(r.hasOutput);
    auto golden = sparse::referenceSpMM(lhs, rhs);
    EXPECT_LT(sparse::DenseMatrix::maxAbsDiff(golden, r.output), 1e-12);
    EXPECT_EQ(r.macOps, lhs.nnz() * c.rhsCols);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineEquivalence,
    ::testing::Values(
        // Aggregation-like problems (square sparse LHS, off-chip RHS).
        Case{"grow", 200, 200, 16, 0.02, false},
        Case{"grow", 333, 333, 64, 0.05, false},
        Case{"grow", 128, 128, 7, 0.5, false},
        Case{"gcnax", 200, 200, 16, 0.02, false},
        Case{"gcnax", 333, 333, 64, 0.05, false},
        Case{"gcnax", 128, 128, 7, 0.5, false},
        Case{"matraptor", 200, 200, 16, 0.02, false},
        Case{"matraptor", 333, 333, 64, 0.05, false},
        Case{"gamma", 200, 200, 16, 0.02, false},
        Case{"gamma", 333, 333, 64, 0.05, false},
        // Combination-like problems (tall sparse LHS, on-chip RHS).
        Case{"grow", 300, 128, 16, 0.1, true},
        Case{"grow", 150, 700, 64, 0.9, true},
        Case{"gcnax", 300, 128, 16, 0.1, true},
        Case{"gcnax", 150, 700, 64, 0.9, true}),
    [](const auto &info) {
        const Case &c = info.param;
        return std::string(c.engine) + "_" + std::to_string(c.rows) +
               "x" + std::to_string(c.cols) + "x" +
               std::to_string(c.rhsCols) +
               (c.rhsOnChip ? "_comb" : "_agg");
    });

TEST(EngineEquivalence, AllEnginesAgreeExactly)
{
    // All four engines accumulate the same products in the same row
    // order, so outputs must agree bit-for-bit with each other.
    Rng rng(404);
    auto lhs = sparse::randomCsr(150, 150, 0.05, rng);
    auto rhs = sparse::randomDense(150, 32, rng);
    SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 32;
    p.rhs = &rhs;
    SimOptions opt;
    opt.functional = true;

    sparse::DenseMatrix first;
    bool haveFirst = false;
    for (const char *name : {"grow", "gcnax", "matraptor", "gamma"}) {
        auto r = makeEngine(name)->run(p, opt);
        ASSERT_TRUE(r.hasOutput) << name;
        if (!haveFirst) {
            first = std::move(r.output);
            haveFirst = true;
        } else {
            EXPECT_DOUBLE_EQ(
                sparse::DenseMatrix::maxAbsDiff(first, r.output), 0.0)
                << name;
        }
    }
}

TEST(EngineEquivalence, BankedDramSameFunctionalResult)
{
    Rng rng(405);
    auto lhs = sparse::randomCsr(100, 100, 0.05, rng);
    auto rhs = sparse::randomDense(100, 16, rng);
    SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 16;
    p.rhs = &rhs;
    SimOptions simple;
    simple.functional = true;
    SimOptions banked = simple;
    banked.dramKind = "banked";

    auto e1 = makeEngine("grow")->run(p, simple);
    auto e2 = makeEngine("grow")->run(p, banked);
    EXPECT_DOUBLE_EQ(
        sparse::DenseMatrix::maxAbsDiff(e1.output, e2.output), 0.0);
    // Cycle counts differ but stay within the same order of magnitude.
    double ratio = static_cast<double>(e2.cycles) /
                   static_cast<double>(e1.cycles);
    EXPECT_GT(ratio, 0.2);
    EXPECT_LT(ratio, 5.0);
}

} // namespace
} // namespace grow::accel
