#include <gtest/gtest.h>

#include "accel/gcnax.hpp"
#include "sparse/convert.hpp"
#include "sparse/reference_gemm.hpp"
#include "util/random.hpp"

namespace grow::accel {
namespace {

sparse::CsrMatrix
randomMatrix(uint32_t rows, uint32_t cols, double density, uint64_t seed)
{
    Rng rng(seed);
    return sparse::randomCsr(rows, cols, density, rng);
}

TEST(GcnaxTiling, RespectsBufferConstraints)
{
    GcnaxConfig cfg;
    GcnaxSim sim(cfg);
    auto lhs = randomMatrix(2000, 2000, 0.001, 1);
    auto t = sim.chooseTiling(lhs, 64);
    ASSERT_GT(t.tm, 0u);
    ASSERT_GT(t.tk, 0u);
    ASSERT_GT(t.tn, 0u);
    // Worst-case-dense sparse tile must fit the sparse buffer.
    EXPECT_LE(static_cast<Bytes>(t.tm) * t.tk * 12, cfg.sparseBufBytes);
    // Dense tile fits the dense buffer.
    EXPECT_LE(static_cast<Bytes>(t.tk) * t.tn * 8, cfg.denseBufBytes);
    // Output tile fits the output buffer.
    EXPECT_LE(static_cast<Bytes>(t.tm) * t.tn * 8, cfg.outBufBytes);
    EXPECT_GE(t.tk, cfg.minTileK);
}

TEST(GcnaxTiling, WideOutputUsesFullTn)
{
    GcnaxSim sim((GcnaxConfig()));
    auto lhs = randomMatrix(500, 500, 0.01, 2);
    auto t = sim.chooseTiling(lhs, 64);
    EXPECT_EQ(t.tn, 64u);
}

TEST(GcnaxTiling, SparserMatrixPrefersSmallerTk)
{
    GcnaxSim sim((GcnaxConfig()));
    auto sparse = randomMatrix(4000, 4000, 0.0005, 3);
    auto dense = randomMatrix(1000, 1000, 0.5, 4);
    auto ts = sim.chooseTiling(sparse, 64);
    auto td = sim.chooseTiling(dense, 64);
    EXPECT_LE(ts.tk, td.tk);
}

TEST(GcnaxRun, TrafficAndCyclesPositive)
{
    GcnaxSim sim((GcnaxConfig()));
    SpDeGemmProblem p;
    auto lhs = randomMatrix(300, 300, 0.01, 5);
    p.lhs = &lhs;
    p.rhsCols = 16;
    auto r = sim.run(p, SimOptions{});
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.macOps, lhs.nnz() * 16);
    EXPECT_GT(r.totalTrafficBytes(), 0u);
    EXPECT_GE(r.fetchedSparseBytes, r.effectualSparseBytes);
}

TEST(GcnaxRun, BandwidthUtilLowForHypersparse)
{
    // The Fig. 6 effect: hypersparse adjacency tiles waste most of the
    // fetched bytes; a dense feature matrix does not.
    GcnaxSim sim((GcnaxConfig()));
    SpDeGemmProblem p;
    auto sparseA = randomMatrix(3000, 3000, 0.0005, 6);
    p.lhs = &sparseA;
    p.rhsCols = 64;
    auto ra = sim.run(p, SimOptions{});

    auto denseX = randomMatrix(3000, 300, 0.9, 7);
    p.lhs = &denseX;
    auto rx = sim.run(p, SimOptions{});

    EXPECT_LT(ra.sparseBandwidthUtil(), 0.4);
    EXPECT_GT(rx.sparseBandwidthUtil(), 0.6);
}

TEST(GcnaxRun, FunctionalMatchesReference)
{
    GcnaxSim sim((GcnaxConfig()));
    auto lhs = randomMatrix(120, 90, 0.1, 8);
    Rng rng(9);
    auto rhs = sparse::randomDense(90, 16, rng);
    SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 16;
    p.rhs = &rhs;
    SimOptions opt;
    opt.functional = true;
    auto r = sim.run(p, opt);
    ASSERT_TRUE(r.hasOutput);
    auto golden = sparse::referenceSpMM(lhs, rhs);
    EXPECT_LT(sparse::DenseMatrix::maxAbsDiff(golden, r.output), 1e-12);
}

TEST(GcnaxRun, MoreBandwidthNeverSlower)
{
    auto lhs = randomMatrix(2000, 2000, 0.002, 10);
    SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 64;
    GcnaxConfig slow;
    slow.dram.bandwidthGBps = 16;
    GcnaxConfig fast;
    fast.dram.bandwidthGBps = 256;
    auto rs = GcnaxSim(slow).run(p, SimOptions{});
    auto rf = GcnaxSim(fast).run(p, SimOptions{});
    EXPECT_GE(rs.cycles, rf.cycles);
}

TEST(GcnaxRun, EmptyMatrixSafe)
{
    GcnaxSim sim((GcnaxConfig()));
    auto lhs = randomMatrix(64, 64, 0.0, 11);
    SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 8;
    auto r = sim.run(p, SimOptions{});
    EXPECT_EQ(r.macOps, 0u);
}

} // namespace
} // namespace grow::accel
