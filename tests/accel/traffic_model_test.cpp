/**
 * @file
 * Traffic-model identities and monotonicity properties shared by the
 * engines: classified byte totals must be internally consistent, scale
 * sensibly with problem parameters, and respect the format taxes each
 * baseline pays.
 */
#include <gtest/gtest.h>

#include "accel/gamma.hpp"
#include "accel/gcnax.hpp"
#include "accel/matraptor.hpp"
#include "core/grow.hpp"
#include "sparse/convert.hpp"
#include "util/random.hpp"

namespace grow::accel {
namespace {

sparse::CsrMatrix
square(uint32_t n, double density, uint64_t seed)
{
    Rng rng(seed);
    return sparse::randomCsr(n, n, density, rng);
}

SpDeGemmProblem
problemFor(const sparse::CsrMatrix &lhs, uint32_t n)
{
    SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = n;
    return p;
}

TEST(TrafficModel, ActivityDramBytesMatchesTrafficTotal)
{
    auto lhs = square(300, 0.05, 1);
    auto p = problemFor(lhs, 32);
    core::GrowSim grow((core::GrowConfig()));
    GcnaxSim gcnax((GcnaxConfig()));
    MatRaptorSim mat((MatRaptorConfig()));
    GammaSim gam((GammaConfig()));
    for (AcceleratorSim *e :
         std::initializer_list<AcceleratorSim *>{&grow, &gcnax, &mat,
                                                 &gam}) {
        auto r = e->run(p, SimOptions{});
        EXPECT_EQ(r.activity.dramBytes, r.traffic.total()) << e->name();
        EXPECT_EQ(r.activity.cycles, r.cycles) << e->name();
        EXPECT_EQ(r.activity.macOps, r.macOps) << e->name();
    }
}

TEST(TrafficModel, GrowTrafficGrowsWithRhsWidth)
{
    auto lhs = square(400, 0.03, 2);
    core::GrowConfig cfg;
    cfg.hdnCacheEnabled = false; // make RHS traffic proportional
    core::GrowSim sim(cfg);
    Bytes prev = 0;
    for (uint32_t n : {8u, 16u, 32u, 64u}) {
        auto r = sim.run(problemFor(lhs, n), SimOptions{});
        EXPECT_GT(r.totalTrafficBytes(), prev);
        prev = r.totalTrafficBytes();
    }
}

TEST(TrafficModel, GcnaxDenseFetchDominatesOnHypersparse)
{
    // The structural GCNAX weakness: dense-tile bytes dwarf the sparse
    // bytes when A is hypersparse (Sec. IV-B).
    auto lhs = square(4000, 0.0008, 3);
    GcnaxSim sim((GcnaxConfig()));
    auto r = sim.run(problemFor(lhs, 64), SimOptions{});
    Bytes sparseB = r.traffic.readBytes[static_cast<size_t>(
        mem::TrafficClass::SparseStream)];
    Bytes denseB = r.traffic.readBytes[static_cast<size_t>(
        mem::TrafficClass::DenseRow)];
    EXPECT_GT(denseB, 4 * sparseB);
}

TEST(TrafficModel, MatraptorPaysFormatTaxOverGamma)
{
    // Both consume the RHS as CSR fibers, but MatRaptor re-fetches per
    // non-zero while GAMMA's fiber cache dedupes.
    auto lhs = square(2000, 0.01, 4);
    auto p = problemFor(lhs, 64);
    auto rm = MatRaptorSim((MatRaptorConfig())).run(p, SimOptions{});
    auto rg = GammaSim((GammaConfig())).run(p, SimOptions{});
    Bytes matDense = rm.traffic.readBytes[static_cast<size_t>(
        mem::TrafficClass::DenseRow)];
    Bytes gamDense = rg.traffic.readBytes[static_cast<size_t>(
        mem::TrafficClass::DenseRow)];
    EXPECT_GT(matDense, gamDense);
    // Output format identical between the two sparse-sparse engines.
    EXPECT_EQ(rm.traffic.writeBytes[static_cast<size_t>(
                  mem::TrafficClass::OutputWrite)],
              rg.traffic.writeBytes[static_cast<size_t>(
                  mem::TrafficClass::OutputWrite)]);
}

TEST(TrafficModel, GrowOutputIsDenseFormat)
{
    // GROW writes dense rows (8 B/elem); sparse-sparse engines write
    // compressed (12 B/elem + pointers): GROW's output bytes are lower.
    auto lhs = square(500, 0.02, 5);
    auto p = problemFor(lhs, 64);
    auto rg =
        core::GrowSim((core::GrowConfig())).run(p, SimOptions{});
    auto rm = MatRaptorSim((MatRaptorConfig())).run(p, SimOptions{});
    EXPECT_LT(rg.traffic.writeBytes[static_cast<size_t>(
                  mem::TrafficClass::OutputWrite)],
              rm.traffic.writeBytes[static_cast<size_t>(
                  mem::TrafficClass::OutputWrite)]);
}

/** Density sweep: all engines' cycle counts rise monotonically with
 *  density (more non-zeros = more work, more traffic). */
class DensityCycleSweep : public ::testing::TestWithParam<const char *>
{
  protected:
    std::unique_ptr<AcceleratorSim>
    make(const std::string &name)
    {
        if (name == "grow")
            return std::make_unique<core::GrowSim>(core::GrowConfig{});
        if (name == "gcnax")
            return std::make_unique<GcnaxSim>(GcnaxConfig{});
        if (name == "matraptor")
            return std::make_unique<MatRaptorSim>(MatRaptorConfig{});
        return std::make_unique<GammaSim>(GammaConfig{});
    }
};

TEST_P(DensityCycleSweep, CyclesMonotoneInDensity)
{
    auto engine = make(GetParam());
    Cycle prev = 0;
    for (double density : {0.005, 0.02, 0.08, 0.3}) {
        auto lhs = square(600, density, 77);
        auto r = engine->run(problemFor(lhs, 32), SimOptions{});
        EXPECT_GT(r.cycles, prev)
            << GetParam() << " at density " << density;
        prev = r.cycles;
    }
}

INSTANTIATE_TEST_SUITE_P(Engines, DensityCycleSweep,
                         ::testing::Values("grow", "gcnax", "matraptor",
                                           "gamma"));

} // namespace
} // namespace grow::accel
