/**
 * @file
 * Sec. VIII replacement-policy study: pinned HDN cache vs demand-filled
 * LRU of identical capacity.
 */
#include <gtest/gtest.h>

#include "accel/accelerator.hpp"
#include "core/grow.hpp"
#include "graph/generators.hpp"
#include "graph/normalize.hpp"
#include "partition/hdn_select.hpp"
#include "partition/multilevel.hpp"
#include "sparse/convert.hpp"
#include "sparse/reference_gemm.hpp"
#include "util/random.hpp"

namespace grow::core {
namespace {

struct Fixture
{
    sparse::CsrMatrix adjacency;
    partition::RelabelResult relabel;
    std::vector<std::vector<NodeId>> hdnLists;
    sparse::DenseMatrix rhs;
};

Fixture
makeFixture(uint32_t nodes = 1500, uint32_t clusters = 6)
{
    graph::DcSbmParams gp;
    gp.nodes = nodes;
    gp.avgDegree = 14.0;
    gp.communities = clusters;
    gp.powerLawAlpha = 2.1;
    gp.seed = 11;
    auto g = graph::generateDcSbm(gp);
    partition::PartitionConfig pc;
    pc.numParts = clusters;
    auto parts = partition::MultilevelPartitioner(pc).partition(g);
    Fixture f;
    f.relabel = partition::relabelByPartition(nodes, parts);
    auto rg = g.relabeled(f.relabel.newToOld);
    f.adjacency = graph::normalizedAdjacency(rg, true);
    f.hdnLists = partition::selectHdnPerCluster(
        rg, f.relabel.clustering, 4096);
    Rng rng(5);
    f.rhs = sparse::randomDense(nodes, 64, rng);
    return f;
}

GrowConfig
withPolicy(HdnPolicy policy, Bytes capacity = 64 * 1024)
{
    GrowConfig c;
    c.hdnPolicy = policy;
    c.hdn.capacityBytes = capacity; // pressure the cache
    return c;
}

accel::SpDeGemmProblem
problemOf(const Fixture &f, bool clustered = true)
{
    accel::SpDeGemmProblem p;
    p.lhs = &f.adjacency;
    p.rhsCols = 64;
    p.rhs = &f.rhs;
    if (clustered) {
        p.clustering = &f.relabel.clustering;
        p.hdnLists = &f.hdnLists;
    }
    return p;
}

TEST(CachePolicy, LruFunctionalMatchesReference)
{
    auto f = makeFixture();
    auto p = problemOf(f);
    accel::SimOptions opt;
    opt.functional = true;
    GrowSim sim(withPolicy(HdnPolicy::Lru));
    auto r = sim.run(p, opt);
    ASSERT_TRUE(r.hasOutput);
    auto golden = sparse::referenceSpMM(f.adjacency, f.rhs);
    EXPECT_LT(sparse::DenseMatrix::maxAbsDiff(golden, r.output), 1e-12);
}

TEST(CachePolicy, LruCountsEveryLookup)
{
    auto f = makeFixture();
    auto p = problemOf(f);
    GrowSim sim(withPolicy(HdnPolicy::Lru));
    auto r = sim.run(p, accel::SimOptions{});
    EXPECT_EQ(r.cacheHits + r.cacheMisses, f.adjacency.nnz());
    EXPECT_GT(r.cacheHits, 0u);
    EXPECT_GT(r.cacheMisses, 0u);
}

TEST(CachePolicy, PinnedHitRateAtLeastLruOnPowerLawGraphs)
{
    // The Sec. VIII claim: on power-law graphs with partitioning,
    // pinning the per-cluster hubs is at least as good as LRU.
    auto f = makeFixture();
    auto p = problemOf(f);
    auto rp =
        GrowSim(withPolicy(HdnPolicy::Pinned)).run(p, accel::SimOptions{});
    auto rl =
        GrowSim(withPolicy(HdnPolicy::Lru)).run(p, accel::SimOptions{});
    double pinnedRate = static_cast<double>(rp.cacheHits) /
                        static_cast<double>(rp.cacheHits + rp.cacheMisses);
    double lruRate = static_cast<double>(rl.cacheHits) /
                     static_cast<double>(rl.cacheHits + rl.cacheMisses);
    EXPECT_GE(pinnedRate + 0.02, lruRate);
}

TEST(CachePolicy, LruPaysNoPreloadTraffic)
{
    auto f = makeFixture();
    auto p = problemOf(f);
    auto r =
        GrowSim(withPolicy(HdnPolicy::Lru)).run(p, accel::SimOptions{});
    EXPECT_EQ(r.traffic.readBytes[static_cast<size_t>(
                  mem::TrafficClass::HdnPreload)],
              0u);
}

TEST(CachePolicy, PinnedDeterministicLruDeterministic)
{
    auto f = makeFixture();
    auto p = problemOf(f);
    for (HdnPolicy policy : {HdnPolicy::Pinned, HdnPolicy::Lru}) {
        GrowSim a(withPolicy(policy));
        GrowSim b(withPolicy(policy));
        auto ra = a.run(p, accel::SimOptions{});
        auto rb = b.run(p, accel::SimOptions{});
        EXPECT_EQ(ra.cycles, rb.cycles);
        EXPECT_EQ(ra.cacheHits, rb.cacheHits);
    }
}

TEST(CachePolicy, FallbackChunkingUsesAllPes)
{
    // Without clustering hints, GrowSim splits rows into one chunk per
    // PE so combination-style phases still parallelise.
    auto f = makeFixture();
    auto p = problemOf(f, /*clustered=*/false);
    GrowConfig cfg;
    cfg.numPes = 4;
    GrowSim sim(cfg);
    auto r = sim.run(p, accel::SimOptions{});
    ASSERT_EQ(sim.lastEngineStats().size(), 4u);
    for (const auto &s : sim.lastEngineStats())
        EXPECT_GT(s.rowsProcessed, 0u);
    // And the functional result still matches.
    accel::SimOptions opt;
    opt.functional = true;
    auto rf = sim.run(p, opt);
    auto golden = sparse::referenceSpMM(f.adjacency, f.rhs);
    EXPECT_LT(sparse::DenseMatrix::maxAbsDiff(golden, rf.output), 1e-12);
}

} // namespace
} // namespace grow::core
