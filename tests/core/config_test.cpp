/**
 * @file
 * Table III fidelity: the default GrowConfig must match the paper's
 * published configuration exactly, and derived quantities (on-chip
 * capacity, HDN row budget) must be self-consistent.
 */
#include <gtest/gtest.h>

#include "core/grow_config.hpp"

namespace grow::core {
namespace {

TEST(GrowConfigDefaults, TableThree)
{
    GrowConfig c;
    EXPECT_EQ(c.numMacs, 16u);                      // # MACs
    EXPECT_EQ(c.iBufSparseBytes, 12u * 1024);       // I-BUF_sparse
    EXPECT_EQ(c.hdn.camEntries, 4096u);             // HDN ID list
    EXPECT_EQ(static_cast<Bytes>(c.hdn.camEntries) * kHdnIdBytes,
              12u * 1024);                          // = 12 KB CAM
    EXPECT_EQ(c.hdn.capacityBytes, 512u * 1024);    // HDN cache
    EXPECT_EQ(c.oBufDenseBytes, 2u * 1024);         // O-BUF_dense
    EXPECT_EQ(c.runaheadDegree, 16u);               // runahead degree
    EXPECT_DOUBLE_EQ(c.dram.bandwidthGBps, 128.0);  // memory bandwidth
    EXPECT_EQ(c.ldnEntries, 16u);                   // LDN table M
    EXPECT_EQ(c.lhsIdEntries, 64u);                 // LHS ID table N
}

TEST(GrowConfigDefaults, OnChipSramTotals)
{
    GrowConfig c;
    // 12 KB + 2 KB + 512 KB + 12 KB = 538 KB.
    EXPECT_EQ(c.onChipSramBytes(), (12u + 2 + 512 + 12) * 1024);
}

TEST(GrowConfigDefaults, HdnRowBudgetPerFeatureWidth)
{
    GrowConfig c;
    // Hidden width 64 -> 512 B rows -> 1024 resident rows.
    c.hdn.rowBytes = 64 * 8;
    EXPECT_EQ(c.hdn.maxResidentRows(), 1024u);
    // Hidden width 16 -> 128 B rows -> CAM-capped at 4096.
    c.hdn.rowBytes = 16 * 8;
    EXPECT_EQ(c.hdn.maxResidentRows(), 4096u);
}

TEST(GrowConfigDefaults, DramClockMatchesAccelerator)
{
    GrowConfig c;
    // 1 GHz accelerator (Sec. VI): 128 GB/s = 128 B/cycle.
    EXPECT_DOUBLE_EQ(c.dram.clockGHz, 1.0);
    EXPECT_DOUBLE_EQ(c.dram.bytesPerCycle(), 128.0);
}

} // namespace
} // namespace grow::core
