#include <gtest/gtest.h>

#include "accel/accelerator.hpp"
#include "core/grow.hpp"
#include "sparse/convert.hpp"
#include "util/bitutil.hpp"
#include "util/random.hpp"

namespace grow::core {
namespace {

sparse::CsrMatrix
randomSquare(uint32_t n, double density, uint64_t seed)
{
    Rng rng(seed);
    return sparse::randomCsr(n, n, density, rng);
}

TEST(GrowEngine, BasicRunProducesSaneStats)
{
    GrowSim sim((GrowConfig()));
    auto lhs = randomSquare(300, 0.05, 1);
    accel::SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 16;
    auto r = sim.run(p, accel::SimOptions{});
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.macOps, lhs.nnz() * 16);
    EXPECT_EQ(r.cacheHits + r.cacheMisses, lhs.nnz());
    EXPECT_GT(r.totalTrafficBytes(), 0u);
    EXPECT_GE(r.fetchedSparseBytes, r.effectualSparseBytes);
}

TEST(GrowEngine, DeterministicAcrossRuns)
{
    auto lhs = randomSquare(400, 0.03, 2);
    accel::SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 32;
    GrowSim sim((GrowConfig()));
    auto a = sim.run(p, accel::SimOptions{});
    auto b = sim.run(p, accel::SimOptions{});
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.totalTrafficBytes(), b.totalTrafficBytes());
    EXPECT_EQ(a.cacheHits, b.cacheHits);
}

TEST(GrowEngine, CombinationAllHitsOnChipWeights)
{
    GrowSim sim((GrowConfig()));
    auto lhs = randomSquare(200, 0.2, 3);
    accel::SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 16;
    p.rhsOnChip = true;
    p.phase = accel::Phase::Combination;
    auto r = sim.run(p, accel::SimOptions{});
    // On-chip W: no cache involved, no dense-row DRAM fetches.
    EXPECT_EQ(r.cacheHits + r.cacheMisses, 0u);
    EXPECT_EQ(r.traffic.readBytes[static_cast<size_t>(
                  mem::TrafficClass::DenseRow)],
              0u);
    // But the weight preload happened once.
    EXPECT_GT(r.traffic.readBytes[static_cast<size_t>(
                  mem::TrafficClass::HdnPreload)],
              0u);
}

TEST(GrowEngine, HdnCacheDisabledAllMisses)
{
    GrowConfig cfg;
    cfg.hdnCacheEnabled = false;
    GrowSim sim(cfg);
    auto lhs = randomSquare(150, 0.1, 4);
    accel::SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 16;
    auto r = sim.run(p, accel::SimOptions{});
    EXPECT_EQ(r.cacheHits, 0u);
    // Every non-zero streams its RHS row from DRAM, except that the LDN
    // table coalesces concurrent misses to the same row (Sec. V-D), so
    // the fetched total can dip slightly below nnz * rowBytes.
    Bytes perRow = roundUp(Bytes{16 * 8}, kDramLineBytes);
    Bytes upper = lhs.nnz() * perRow;
    EXPECT_LE(r.traffic.readBytes[static_cast<size_t>(
                  mem::TrafficClass::DenseRow)],
              upper);
    EXPECT_GE(r.traffic.readBytes[static_cast<size_t>(
                  mem::TrafficClass::DenseRow)],
              upper * 8 / 10);
}

TEST(GrowEngine, CacheEnabledReducesTraffic)
{
    auto lhs = randomSquare(500, 0.05, 5);
    accel::SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 64;
    GrowConfig with;
    GrowConfig without;
    without.hdnCacheEnabled = false;
    auto rw = GrowSim(with).run(p, accel::SimOptions{});
    auto ro = GrowSim(without).run(p, accel::SimOptions{});
    EXPECT_LT(rw.totalTrafficBytes(), ro.totalTrafficBytes());
    EXPECT_LE(rw.cycles, ro.cycles);
}

TEST(GrowEngine, OutputWriteTrafficExact)
{
    GrowSim sim((GrowConfig()));
    auto lhs = randomSquare(128, 0.1, 6);
    accel::SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 16;
    auto r = sim.run(p, accel::SimOptions{});
    // One 128-byte output row per LHS row (16 x 8 B rounds to 128).
    EXPECT_EQ(r.traffic.writeBytes[static_cast<size_t>(
                  mem::TrafficClass::OutputWrite)],
              128u * 128u);
}

TEST(GrowEngine, MoreBandwidthNeverSlower)
{
    auto lhs = randomSquare(800, 0.02, 7);
    accel::SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 64;
    GrowConfig slow;
    slow.dram.bandwidthGBps = 16;
    GrowConfig fast;
    fast.dram.bandwidthGBps = 256;
    auto rs = GrowSim(slow).run(p, accel::SimOptions{});
    auto rf = GrowSim(fast).run(p, accel::SimOptions{});
    EXPECT_GE(rs.cycles, rf.cycles);
}

TEST(GrowEngine, EmptyRowsRetireCleanly)
{
    // A matrix with many empty rows (isolated nodes) must still write
    // every output row and terminate.
    sparse::CooMatrix coo(64, 64);
    coo.add(0, 1, 1.0);
    coo.add(63, 62, 2.0);
    coo.canonicalize();
    auto lhs = sparse::CsrMatrix::fromCoo(coo);
    GrowSim sim((GrowConfig()));
    accel::SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 8;
    auto r = sim.run(p, accel::SimOptions{});
    EXPECT_EQ(r.traffic.writeBytes[static_cast<size_t>(
                  mem::TrafficClass::OutputWrite)],
              64u * 64u);
}

TEST(GrowEngine, TopReferencedColumnsRanksByFrequency)
{
    sparse::CooMatrix coo(4, 4);
    // Column 2 referenced 3x, column 0 2x, column 1 1x.
    coo.add(0, 2, 1.0);
    coo.add(1, 2, 1.0);
    coo.add(2, 2, 1.0);
    coo.add(0, 0, 1.0);
    coo.add(3, 0, 1.0);
    coo.add(3, 1, 1.0);
    coo.canonicalize();
    auto m = sparse::CsrMatrix::fromCoo(coo);
    auto top = topReferencedColumns(m, 2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0], 2u);
    EXPECT_EQ(top[1], 0u);
}

TEST(GrowEngine, LhsIdTableStallsUnderPressure)
{
    // A tiny LHS ID table with an all-miss workload must record stalls
    // (the structural hazard of Fig. 16) and still complete correctly.
    GrowConfig cfg;
    cfg.hdnCacheEnabled = false;
    cfg.lhsIdEntries = 4;
    cfg.ldnEntries = 2;
    GrowSim sim(cfg);
    auto lhs = randomSquare(200, 0.1, 8);
    accel::SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 16;
    auto r = sim.run(p, accel::SimOptions{});
    EXPECT_EQ(r.macOps, lhs.nnz() * 16);
    uint64_t stalls = 0;
    for (const auto &s : sim.lastEngineStats())
        stalls += s.ldnStalls + s.lhsIdStalls;
    EXPECT_GT(stalls, 0u);
}

TEST(GrowEngine, LargerTablesReduceStallsAndCycles)
{
    auto lhs = randomSquare(400, 0.05, 9);
    accel::SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 64;
    GrowConfig tiny;
    tiny.hdnCacheEnabled = false;
    tiny.ldnEntries = 1;
    tiny.lhsIdEntries = 2;
    GrowConfig paper;
    paper.hdnCacheEnabled = false; // isolate the table effect
    auto rt = GrowSim(tiny).run(p, accel::SimOptions{});
    auto rp = GrowSim(paper).run(p, accel::SimOptions{});
    EXPECT_GT(rt.cycles, rp.cycles);
}

} // namespace
} // namespace grow::core
