/**
 * @file
 * The worked example of Sec. V-C (Figs. 12 and 13): a six-node graph
 * where caching the top-3 high-degree nodes yields a modest hit count,
 * and graph partitioning into two clusters of three raises it to 18 --
 * every intra-cluster reference hits once each cluster pins all of its
 * own members.
 */
#include <gtest/gtest.h>

#include "accel/accelerator.hpp"
#include "core/grow.hpp"
#include "sparse/coo_matrix.hpp"

namespace grow::core {
namespace {

/**
 * The partitioned adjacency of Fig. 13(b): two clusters {0,1,2} and
 * {3,4,5}; every node references all members of its own cluster
 * (including itself, GCNs add self-loops) and a few nodes keep one
 * inter-cluster edge.
 */
sparse::CsrMatrix
fig13Adjacency()
{
    sparse::CooMatrix coo(6, 6);
    auto addRow = [&coo](NodeId r, std::initializer_list<NodeId> cols) {
        for (NodeId c : cols)
            coo.add(r, c, 1.0);
    };
    addRow(0, {0, 1, 2, 3});
    addRow(1, {0, 1, 2, 4});
    addRow(2, {0, 1, 2});
    addRow(3, {0, 3, 4, 5});
    addRow(4, {1, 3, 4, 5});
    addRow(5, {3, 4, 5});
    coo.canonicalize();
    return sparse::CsrMatrix::fromCoo(coo);
}

GrowConfig
exampleConfig()
{
    GrowConfig cfg;
    // Tiny HDN cache: exactly 3 rows (the example caches top-3).
    cfg.hdn.camEntries = 3;
    cfg.hdn.capacityBytes = 3 * 4 * 8; // 3 rows of 4 features
    return cfg;
}

TEST(HdnExample, WithPartitioningGets18Hits)
{
    auto A = fig13Adjacency();
    partition::Clustering clustering;
    clustering.clusterStart = {0, 3, 6};
    // Per-cluster HDN lists: each cluster pins its own three nodes.
    std::vector<std::vector<NodeId>> lists = {{0, 1, 2}, {3, 4, 5}};

    accel::SpDeGemmProblem p;
    p.lhs = &A;
    p.rhsCols = 4;
    p.clustering = &clustering;
    p.hdnLists = &lists;

    GrowSim sim(exampleConfig());
    auto r = sim.run(p, accel::SimOptions{});
    // 18 intra-cluster references hit (Fig. 13's table); the 4
    // inter-cluster references miss.
    EXPECT_EQ(r.cacheHits, 18u);
    EXPECT_EQ(r.cacheMisses, 4u);
}

TEST(HdnExample, WithoutPartitioningFewerHits)
{
    auto A = fig13Adjacency();
    accel::SpDeGemmProblem p;
    p.lhs = &A;
    p.rhsCols = 4;
    // No clustering/HDN hints: GrowSim falls back to a single cluster
    // pinning the global top-3 referenced nodes (Fig. 12's policy).
    GrowSim sim(exampleConfig());
    auto r = sim.run(p, accel::SimOptions{});
    // Column reference counts are {4,4,3,4,4,3}: the global top-3 is
    // {0,1,3} -> 12 hits. Partitioning (18 hits) beats this, matching
    // the Fig. 12 vs Fig. 13 comparison.
    EXPECT_EQ(r.cacheHits, 12u);
    EXPECT_EQ(r.cacheMisses, 10u);
}

TEST(HdnExample, PartitioningStrictlyImproves)
{
    auto A = fig13Adjacency();
    partition::Clustering clustering;
    clustering.clusterStart = {0, 3, 6};
    std::vector<std::vector<NodeId>> lists = {{0, 1, 2}, {3, 4, 5}};

    accel::SpDeGemmProblem with;
    with.lhs = &A;
    with.rhsCols = 4;
    with.clustering = &clustering;
    with.hdnLists = &lists;
    accel::SpDeGemmProblem without;
    without.lhs = &A;
    without.rhsCols = 4;

    GrowSim sim(exampleConfig());
    auto rw = sim.run(with, accel::SimOptions{});
    auto ro = sim.run(without, accel::SimOptions{});
    EXPECT_GT(rw.cacheHits, ro.cacheHits);
    EXPECT_LT(rw.cacheMisses, ro.cacheMisses);
    // Note: raw DRAM bytes are not compared here -- on a six-node toy
    // graph the LDN table coalesces the no-partitioning case's repeated
    // misses into a handful of fetches, masking the benefit that
    // dominates at scale (quantified by bench_fig18_memory_traffic).
}

} // namespace
} // namespace grow::core
