#include <gtest/gtest.h>

#include "core/mac_scheduler.hpp"

namespace grow::core {
namespace {

TEST(MacScheduler, BackToBackProducts)
{
    MacScheduler m;
    m.addProduct(0, 1, 4);
    m.addProduct(0, 2, 4);
    auto a = m.drainOne();
    auto b = m.drainOne();
    EXPECT_EQ(a.rowToken, 1u);
    EXPECT_EQ(a.finish, 4u);
    EXPECT_EQ(b.rowToken, 2u);
    EXPECT_EQ(b.finish, 8u);
    EXPECT_EQ(m.busyCycles(), 8u);
}

TEST(MacScheduler, ReadyOrderNotInsertionOrder)
{
    MacScheduler m;
    m.addProduct(100, 1, 4); // a late miss product
    m.addProduct(0, 2, 4);   // an early hit product
    auto first = m.drainOne();
    EXPECT_EQ(first.rowToken, 2u); // the hit goes first
    EXPECT_EQ(first.finish, 4u);
    auto second = m.drainOne();
    EXPECT_EQ(second.rowToken, 1u);
    EXPECT_EQ(second.finish, 104u); // waits for the data
}

TEST(MacScheduler, IdleGapsNotBilled)
{
    MacScheduler m;
    m.addProduct(0, 1, 2);
    m.addProduct(50, 2, 2);
    m.drainOne();
    auto b = m.drainOne();
    EXPECT_EQ(b.finish, 52u);
    EXPECT_EQ(m.busyCycles(), 4u); // idle 2..50 not counted busy
}

TEST(MacScheduler, TieBreakDeterministic)
{
    MacScheduler m;
    m.addProduct(5, 10, 1);
    m.addProduct(5, 20, 1);
    m.addProduct(5, 30, 1);
    EXPECT_EQ(m.drainOne().rowToken, 10u);
    EXPECT_EQ(m.drainOne().rowToken, 20u);
    EXPECT_EQ(m.drainOne().rowToken, 30u);
}

TEST(MacScheduler, PendingCount)
{
    MacScheduler m;
    EXPECT_TRUE(m.idle());
    m.addProduct(0, 1, 1);
    m.addProduct(0, 1, 1);
    EXPECT_EQ(m.pendingProducts(), 2u);
    m.drainOne();
    EXPECT_EQ(m.pendingProducts(), 1u);
}

TEST(MacScheduler, DrainEmptyThrows)
{
    MacScheduler m;
    EXPECT_ANY_THROW(m.drainOne());
}

TEST(MacScheduler, ZeroDurationRejected)
{
    MacScheduler m;
    EXPECT_ANY_THROW(m.addProduct(0, 1, 0));
}

TEST(MacScheduler, MakespanLowerBound)
{
    // The MAC array is work-conserving: the makespan is at least the
    // total work and at least the last ready time.
    MacScheduler m;
    Cycle total = 0;
    for (int i = 0; i < 100; ++i) {
        m.addProduct(i * 3, 1, 4);
        total += 4;
    }
    Cycle last = 0;
    while (!m.idle())
        last = m.drainOne().finish;
    EXPECT_GE(last, total);
    EXPECT_GE(last, 99u * 3 + 4);
}

} // namespace
} // namespace grow::core
