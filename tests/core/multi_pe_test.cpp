/**
 * @file
 * Multi-PE scaling (Sec. VII-F): clusters interleave across PEs on a
 * shared DRAM channel whose bandwidth scales with the PE count.
 */
#include <gtest/gtest.h>

#include "accel/accelerator.hpp"
#include "core/grow.hpp"
#include "graph/generators.hpp"
#include "graph/normalize.hpp"
#include "partition/hdn_select.hpp"
#include "partition/multilevel.hpp"
#include "sparse/convert.hpp"
#include "sparse/reference_gemm.hpp"
#include "util/random.hpp"

namespace grow::core {
namespace {

/** Build a clustered aggregation problem over a community graph. */
struct ClusteredProblem
{
    sparse::CsrMatrix adjacency;
    partition::RelabelResult relabel;
    std::vector<std::vector<NodeId>> hdnLists;
    sparse::DenseMatrix rhs;
};

ClusteredProblem
makeClusteredProblem(uint32_t nodes, uint32_t clusters, uint32_t rhs_cols)
{
    graph::DcSbmParams gp;
    gp.nodes = nodes;
    gp.avgDegree = 12.0;
    gp.communities = clusters;
    gp.seed = 31;
    auto g = graph::generateDcSbm(gp);

    partition::PartitionConfig pc;
    pc.numParts = clusters;
    auto parts = partition::MultilevelPartitioner(pc).partition(g);
    ClusteredProblem out;
    out.relabel = partition::relabelByPartition(nodes, parts);
    auto rg = g.relabeled(out.relabel.newToOld);
    out.adjacency = graph::normalizedAdjacency(rg, true);
    out.hdnLists = partition::selectHdnPerCluster(
        rg, out.relabel.clustering, 4096);
    Rng rng(7);
    out.rhs = sparse::randomDense(nodes, rhs_cols, rng);
    return out;
}

TEST(MultiPe, FunctionalIdenticalAcrossPeCounts)
{
    auto cp = makeClusteredProblem(600, 8, 16);
    accel::SpDeGemmProblem p;
    p.lhs = &cp.adjacency;
    p.rhsCols = 16;
    p.rhs = &cp.rhs;
    p.clustering = &cp.relabel.clustering;
    p.hdnLists = &cp.hdnLists;
    accel::SimOptions opt;
    opt.functional = true;

    auto golden = sparse::referenceSpMM(cp.adjacency, cp.rhs);
    for (uint32_t pes : {1u, 2u, 4u, 8u}) {
        GrowConfig cfg;
        cfg.numPes = pes;
        auto r = GrowSim(cfg).run(p, opt);
        ASSERT_TRUE(r.hasOutput);
        EXPECT_LT(sparse::DenseMatrix::maxAbsDiff(golden, r.output),
                  1e-12)
            << pes << " PEs";
    }
}

TEST(MultiPe, ThroughputScalesOnLargeInputs)
{
    auto cp = makeClusteredProblem(4000, 16, 64);
    accel::SpDeGemmProblem p;
    p.lhs = &cp.adjacency;
    p.rhsCols = 64;
    p.clustering = &cp.relabel.clustering;
    p.hdnLists = &cp.hdnLists;

    GrowConfig one;
    one.numPes = 1;
    GrowConfig four;
    four.numPes = 4;
    auto r1 = GrowSim(one).run(p, accel::SimOptions{});
    auto r4 = GrowSim(four).run(p, accel::SimOptions{});
    double speedup = static_cast<double>(r1.cycles) /
                     static_cast<double>(r4.cycles);
    EXPECT_GT(speedup, 2.0);
    EXPECT_LT(speedup, 6.0);
}

TEST(MultiPe, SmallGraphGainsLittle)
{
    // Sec. VII-F: for small graphs a single PE already captures the
    // working set; extra PEs bring little.
    auto cp = makeClusteredProblem(300, 2, 16);
    accel::SpDeGemmProblem p;
    p.lhs = &cp.adjacency;
    p.rhsCols = 16;
    p.clustering = &cp.relabel.clustering;
    p.hdnLists = &cp.hdnLists;

    GrowConfig one;
    one.numPes = 1;
    GrowConfig eight;
    eight.numPes = 8;
    auto r1 = GrowSim(one).run(p, accel::SimOptions{});
    auto r8 = GrowSim(eight).run(p, accel::SimOptions{});
    double speedup = static_cast<double>(r1.cycles) /
                     static_cast<double>(r8.cycles);
    EXPECT_LT(speedup, 4.0);
}

TEST(MultiPe, TrafficIndependentOfPeCount)
{
    auto cp = makeClusteredProblem(1500, 8, 32);
    accel::SpDeGemmProblem p;
    p.lhs = &cp.adjacency;
    p.rhsCols = 32;
    p.clustering = &cp.relabel.clustering;
    p.hdnLists = &cp.hdnLists;

    GrowConfig one;
    one.numPes = 1;
    GrowConfig four;
    four.numPes = 4;
    auto r1 = GrowSim(one).run(p, accel::SimOptions{});
    auto r4 = GrowSim(four).run(p, accel::SimOptions{});
    // Same clusters, same HDN lists: cache behaviour matches exactly
    // and byte totals agree up to per-PE stream-prefetch tails.
    EXPECT_EQ(r1.cacheHits, r4.cacheHits);
    double ratio = static_cast<double>(r4.totalTrafficBytes()) /
                   static_cast<double>(r1.totalTrafficBytes());
    EXPECT_NEAR(ratio, 1.0, 0.02);
}

TEST(MultiPe, MorePesThanClustersStillCorrect)
{
    auto cp = makeClusteredProblem(400, 2, 16);
    accel::SpDeGemmProblem p;
    p.lhs = &cp.adjacency;
    p.rhsCols = 16;
    p.rhs = &cp.rhs;
    p.clustering = &cp.relabel.clustering;
    p.hdnLists = &cp.hdnLists;
    accel::SimOptions opt;
    opt.functional = true;
    GrowConfig cfg;
    cfg.numPes = 16; // more PEs than clusters: some idle
    auto r = GrowSim(cfg).run(p, opt);
    auto golden = sparse::referenceSpMM(cp.adjacency, cp.rhs);
    EXPECT_LT(sparse::DenseMatrix::maxAbsDiff(golden, r.output), 1e-12);
}

} // namespace
} // namespace grow::core
