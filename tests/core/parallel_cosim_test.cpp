/**
 * @file
 * Cluster-parallel co-simulation (epoch mode): thread-count invariance
 * down to the bit, functional correctness, and the relationship to the
 * exact serial schedule (epoch=0).
 */
#include <gtest/gtest.h>

#include "accel/accelerator.hpp"
#include "core/grow.hpp"
#include "graph/generators.hpp"
#include "graph/normalize.hpp"
#include "partition/hdn_select.hpp"
#include "partition/multilevel.hpp"
#include "sparse/convert.hpp"
#include "sparse/reference_gemm.hpp"
#include "util/random.hpp"

namespace grow::core {
namespace {

struct ClusteredProblem
{
    sparse::CsrMatrix adjacency;
    partition::RelabelResult relabel;
    std::vector<std::vector<NodeId>> hdnLists;
    sparse::DenseMatrix rhs;
};

ClusteredProblem
makeClusteredProblem(uint32_t nodes, uint32_t clusters, uint32_t rhs_cols)
{
    graph::DcSbmParams gp;
    gp.nodes = nodes;
    gp.avgDegree = 12.0;
    gp.communities = clusters;
    gp.seed = 77;
    auto g = graph::generateDcSbm(gp);

    partition::PartitionConfig pc;
    pc.numParts = clusters;
    auto parts = partition::MultilevelPartitioner(pc).partition(g);
    ClusteredProblem out;
    out.relabel = partition::relabelByPartition(nodes, parts);
    auto rg = g.relabeled(out.relabel.newToOld);
    out.adjacency = graph::normalizedAdjacency(rg, true);
    out.hdnLists = partition::selectHdnPerCluster(
        rg, out.relabel.clustering, 4096);
    Rng rng(9);
    out.rhs = sparse::randomDense(nodes, rhs_cols, rng);
    return out;
}

accel::SpDeGemmProblem
problemFor(const ClusteredProblem &cp, uint32_t rhs_cols)
{
    accel::SpDeGemmProblem p;
    p.lhs = &cp.adjacency;
    p.rhsCols = rhs_cols;
    p.clustering = &cp.relabel.clustering;
    p.hdnLists = &cp.hdnLists;
    p.label = "parallel-cosim-test";
    return p;
}

/** Assert two phase results are bit-identical in every counted field. */
void
expectBitIdentical(const accel::PhaseResult &a, const accel::PhaseResult &b,
                   const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.macOps, b.macOps);
    for (size_t i = 0; i < mem::kNumTrafficClasses; ++i) {
        EXPECT_EQ(a.traffic.readBytes[i], b.traffic.readBytes[i]) << i;
        EXPECT_EQ(a.traffic.writeBytes[i], b.traffic.writeBytes[i]) << i;
    }
    EXPECT_EQ(a.effectualSparseBytes, b.effectualSparseBytes);
    EXPECT_EQ(a.fetchedSparseBytes, b.fetchedSparseBytes);
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses);
    EXPECT_EQ(a.activity.macOps, b.activity.macOps);
    EXPECT_EQ(a.activity.dramBytes, b.activity.dramBytes);
    EXPECT_EQ(a.activity.cycles, b.activity.cycles);
    EXPECT_EQ(a.activity.onChipSramBytes, b.activity.onChipSramBytes);
    ASSERT_EQ(a.activity.sram.size(), b.activity.sram.size());
    for (size_t i = 0; i < a.activity.sram.size(); ++i) {
        EXPECT_EQ(a.activity.sram[i].capacity,
                  b.activity.sram[i].capacity);
        EXPECT_EQ(a.activity.sram[i].accesses,
                  b.activity.sram[i].accesses);
    }
}

TEST(ParallelCosim, EpochModeIsBitIdenticalAcrossThreadCounts)
{
    auto cp = makeClusteredProblem(900, 8, 32);
    auto p = problemFor(cp, 32);
    GrowConfig cfg;
    cfg.numPes = 4;

    accel::SimOptions base;
    base.epochCycles = 256;

    accel::SimOptions t1 = base;
    t1.threads = 1;
    auto r1 = GrowSim(cfg).run(p, t1);

    for (uint32_t threads : {2u, 8u}) {
        accel::SimOptions tn = base;
        tn.threads = threads;
        auto rn = GrowSim(cfg).run(p, tn);
        expectBitIdentical(r1, rn,
                           "threads=" + std::to_string(threads));
    }
}

TEST(ParallelCosim, EpochModeIsRepeatable)
{
    auto cp = makeClusteredProblem(500, 4, 16);
    auto p = problemFor(cp, 16);
    GrowConfig cfg;
    cfg.numPes = 4;
    accel::SimOptions opt;
    opt.epochCycles = 128;
    opt.threads = 8;
    auto a = GrowSim(cfg).run(p, opt);
    auto b = GrowSim(cfg).run(p, opt);
    expectBitIdentical(a, b, "repeat");
}

TEST(ParallelCosim, EpochZeroKeepsTheExactSerialSchedule)
{
    // epochCycles == 0 is the serial engine interleaving regardless of
    // the thread budget (worker parallelism then lives at the phase
    // level); any threads value must reproduce it bit for bit.
    auto cp = makeClusteredProblem(500, 4, 16);
    auto p = problemFor(cp, 16);
    GrowConfig cfg;
    cfg.numPes = 4;
    accel::SimOptions serial; // defaults: threads=1, epochCycles=0
    auto r1 = GrowSim(cfg).run(p, serial);
    accel::SimOptions wide = serial;
    wide.threads = 8;
    auto r8 = GrowSim(cfg).run(p, wide);
    expectBitIdentical(r1, r8, "epoch=0 threads=8");
}

TEST(ParallelCosim, EpochModeStaysFaithfulToTheSerialSchedule)
{
    // The epoch window only relaxes *when* cross-lane contention is
    // observed; the order-independent counters must match the serial
    // schedule exactly and cycles must stay in the same regime.
    auto cp = makeClusteredProblem(900, 8, 32);
    auto p = problemFor(cp, 32);
    GrowConfig cfg;
    cfg.numPes = 4;
    auto serial = GrowSim(cfg).run(p, accel::SimOptions{});
    accel::SimOptions opt;
    opt.epochCycles = 256;
    opt.threads = 8;
    auto epoch = GrowSim(cfg).run(p, opt);

    EXPECT_EQ(serial.macOps, epoch.macOps);
    EXPECT_EQ(serial.cacheHits, epoch.cacheHits);
    EXPECT_EQ(serial.cacheMisses, epoch.cacheMisses);
    EXPECT_EQ(serial.effectualSparseBytes, epoch.effectualSparseBytes);
    EXPECT_EQ(serial.fetchedSparseBytes, epoch.fetchedSparseBytes);
    double ratio = static_cast<double>(epoch.cycles) /
                   static_cast<double>(serial.cycles);
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
}

TEST(ParallelCosim, EpochModeFunctionalOutputMatchesReference)
{
    auto cp = makeClusteredProblem(400, 4, 16);
    auto p = problemFor(cp, 16);
    p.rhs = &cp.rhs;
    GrowConfig cfg;
    cfg.numPes = 4;
    accel::SimOptions opt;
    opt.functional = true;
    opt.epochCycles = 64;
    opt.threads = 8;
    auto r = GrowSim(cfg).run(p, opt);
    ASSERT_TRUE(r.hasOutput);
    auto golden = sparse::referenceSpMM(cp.adjacency, cp.rhs);
    EXPECT_LT(sparse::DenseMatrix::maxAbsDiff(golden, r.output), 1e-12);
}

TEST(ParallelCosim, PreloadOverlapIsBitIdenticalAcrossThreadCounts)
{
    // hdnPreloadOverlap changes *when* HDN preload DMA traffic enters
    // the memory system, so it must hold the same determinism contract
    // as the baseline schedule: epoch-mode results may not depend on
    // the worker count.
    auto cp = makeClusteredProblem(900, 8, 32);
    auto p = problemFor(cp, 32);
    GrowConfig cfg;
    cfg.numPes = 4;
    cfg.hdnPreloadOverlap = true;

    accel::SimOptions base;
    base.epochCycles = 256;

    accel::SimOptions t1 = base;
    t1.threads = 1;
    auto r1 = GrowSim(cfg).run(p, t1);

    for (uint32_t threads : {2u, 8u}) {
        accel::SimOptions tn = base;
        tn.threads = threads;
        auto rn = GrowSim(cfg).run(p, tn);
        expectBitIdentical(r1, rn,
                           "overlap threads=" + std::to_string(threads));
    }
}

TEST(ParallelCosim, PreloadOverlapOnlyHidesLatencyNeverChangesWork)
{
    // Overlapping the next cluster's HDN preload with the current
    // cluster's tail hides DMA latency. The arithmetic work and every
    // schedule-independent traffic class must be unchanged; DenseRow
    // traffic may drift marginally because the LDN table's
    // share-the-fill window is clock-relative (an earlier clock sees a
    // different set of in-flight fills), and the schedule may only get
    // faster.
    auto cp = makeClusteredProblem(900, 8, 32);
    auto p = problemFor(cp, 32);
    GrowConfig blockingCfg;
    blockingCfg.numPes = 4;
    GrowConfig overlapCfg = blockingCfg;
    overlapCfg.hdnPreloadOverlap = true;

    auto blocking = GrowSim(blockingCfg).run(p, accel::SimOptions{});
    auto overlap = GrowSim(overlapCfg).run(p, accel::SimOptions{});

    EXPECT_LE(overlap.cycles, blocking.cycles);
    EXPECT_EQ(blocking.macOps, overlap.macOps);
    EXPECT_EQ(blocking.cacheHits, overlap.cacheHits);
    EXPECT_EQ(blocking.cacheMisses, overlap.cacheMisses);
    EXPECT_EQ(blocking.effectualSparseBytes,
              overlap.effectualSparseBytes);
    EXPECT_EQ(blocking.fetchedSparseBytes, overlap.fetchedSparseBytes);
    for (size_t i = 0; i < mem::kNumTrafficClasses; ++i) {
        SCOPED_TRACE(i);
        const auto cls = static_cast<mem::TrafficClass>(i);
        if (cls == mem::TrafficClass::DenseRow) {
            const double b =
                static_cast<double>(blocking.traffic.readBytes[i]);
            const double o =
                static_cast<double>(overlap.traffic.readBytes[i]);
            EXPECT_NEAR(o / b, 1.0, 0.01);
        } else {
            EXPECT_EQ(blocking.traffic.readBytes[i],
                      overlap.traffic.readBytes[i]);
        }
        EXPECT_EQ(blocking.traffic.writeBytes[i],
                  overlap.traffic.writeBytes[i]);
    }
}

TEST(ParallelCosim, EpochModeWorksOnTheBankedDramModel)
{
    auto cp = makeClusteredProblem(500, 4, 16);
    auto p = problemFor(cp, 16);
    GrowConfig cfg;
    cfg.numPes = 4;
    accel::SimOptions opt;
    opt.dramKind = "banked";
    opt.epochCycles = 256;
    opt.threads = 2;
    auto a = GrowSim(cfg).run(p, opt);
    opt.threads = 8;
    auto b = GrowSim(cfg).run(p, opt);
    expectBitIdentical(a, b, "banked epoch mode");
}

} // namespace
} // namespace grow::core
