/**
 * @file
 * Runahead execution properties (Sec. V-D, Fig. 25(a)): widening the
 * multi-row window hides HDN-cache miss latency, monotonically (up to
 * model noise) improving performance until the LDN/LHS-ID tables
 * saturate, with no effect on functional results or traffic.
 */
#include <gtest/gtest.h>

#include "accel/accelerator.hpp"
#include "core/grow.hpp"
#include "sparse/convert.hpp"
#include "sparse/reference_gemm.hpp"
#include "util/random.hpp"

namespace grow::core {
namespace {

sparse::CsrMatrix
testMatrix(uint32_t n, double density, uint64_t seed)
{
    Rng rng(seed);
    return sparse::randomCsr(n, n, density, rng);
}

GrowConfig
withDegree(uint32_t degree)
{
    GrowConfig cfg;
    cfg.runaheadDegree = degree;
    // Shrink the HDN cache so the miss stream is non-trivial: at unit
    // scale the default 4096-entry global fallback list would pin every
    // node and leave runahead nothing to hide.
    cfg.hdn.camEntries = 32;
    cfg.hdn.capacityBytes = 32 * 64 * 8;
    return cfg;
}

TEST(Runahead, WideWindowBeatsSingleRow)
{
    // With misses in the stream, 16-way runahead must clearly beat the
    // blocking 1-way configuration.
    auto lhs = testMatrix(600, 0.02, 1);
    accel::SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 64;
    auto r1 = GrowSim(withDegree(1)).run(p, accel::SimOptions{});
    auto r16 = GrowSim(withDegree(16)).run(p, accel::SimOptions{});
    EXPECT_GT(static_cast<double>(r1.cycles) /
                  static_cast<double>(r16.cycles),
              1.15);
}

TEST(Runahead, RoughlyMonotoneInDegree)
{
    auto lhs = testMatrix(500, 0.03, 2);
    accel::SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 64;
    Cycle prev = 0;
    for (uint32_t degree : {1u, 2u, 4u, 8u, 16u, 32u}) {
        auto r = GrowSim(withDegree(degree)).run(p, accel::SimOptions{});
        if (prev != 0) {
            // Allow 5% model noise but no real regression.
            EXPECT_LE(r.cycles, prev + prev / 20)
                << "degree " << degree;
        }
        prev = r.cycles;
    }
}

TEST(Runahead, PlateausOnceTablesSaturate)
{
    // Fig. 25(a): the gap between 16- and 32-way is small because the
    // LDN/LHS ID tables (16/64 entries) become the limiter.
    auto lhs = testMatrix(800, 0.02, 3);
    accel::SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 64;
    auto r16 = GrowSim(withDegree(16)).run(p, accel::SimOptions{});
    auto r32 = GrowSim(withDegree(32)).run(p, accel::SimOptions{});
    double gain = static_cast<double>(r16.cycles) /
                  static_cast<double>(r32.cycles);
    EXPECT_LT(gain, 1.25);
}

TEST(Runahead, DoesNotChangeTrafficOrResults)
{
    auto lhs = testMatrix(300, 0.05, 4);
    Rng rng(5);
    auto rhs = sparse::randomDense(300, 16, rng);
    accel::SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 16;
    p.rhs = &rhs;
    accel::SimOptions opt;
    opt.functional = true;

    auto r1 = GrowSim(withDegree(1)).run(p, opt);
    auto r16 = GrowSim(withDegree(16)).run(p, opt);
    // A wider window can only *coalesce more* concurrent misses in the
    // LDN table, so traffic is equal or slightly lower -- never higher.
    EXPECT_LE(r16.totalTrafficBytes(), r1.totalTrafficBytes());
    EXPECT_GE(r16.totalTrafficBytes(),
              r1.totalTrafficBytes() * 95 / 100);
    EXPECT_EQ(r1.cacheHits, r16.cacheHits);
    EXPECT_DOUBLE_EQ(
        sparse::DenseMatrix::maxAbsDiff(r1.output, r16.output), 0.0);
}

TEST(Runahead, WindowStallsDropWithDegree)
{
    auto lhs = testMatrix(400, 0.04, 6);
    accel::SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 64;
    GrowSim narrow(withDegree(2));
    narrow.run(p, accel::SimOptions{});
    uint64_t narrowStalls = 0;
    for (const auto &s : narrow.lastEngineStats())
        narrowStalls += s.windowStalls;

    GrowSim wide(withDegree(32));
    wide.run(p, accel::SimOptions{});
    uint64_t wideStalls = 0;
    for (const auto &s : wide.lastEngineStats())
        wideStalls += s.windowStalls;
    EXPECT_GT(narrowStalls, wideStalls);
}

TEST(Runahead, HelpsMostWhenLatencyHigh)
{
    // Runahead is a latency-hiding mechanism: its benefit grows with
    // the DRAM access latency.
    auto lhs = testMatrix(500, 0.02, 7);
    accel::SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 64;

    auto gainAtLatency = [&](Cycle latency) {
        GrowConfig c1 = withDegree(1);
        c1.dram.accessLatency = latency;
        GrowConfig c16 = withDegree(16);
        c16.dram.accessLatency = latency;
        auto r1 = GrowSim(c1).run(p, accel::SimOptions{});
        auto r16 = GrowSim(c16).run(p, accel::SimOptions{});
        return static_cast<double>(r1.cycles) /
               static_cast<double>(r16.cycles);
    };
    EXPECT_GT(gainAtLatency(400), gainAtLatency(25));
}

} // namespace
} // namespace grow::core
