/**
 * @file
 * Byte-level accounting identities of the GROW engine: the CSR stream,
 * the HDN preloads and the output writes must match closed-form
 * expectations derived from the problem structure.
 */
#include <gtest/gtest.h>

#include "accel/accelerator.hpp"
#include "core/grow.hpp"
#include "sparse/convert.hpp"
#include "util/bitutil.hpp"
#include "util/random.hpp"

namespace grow::core {
namespace {

sparse::CsrMatrix
square(uint32_t n, double density, uint64_t seed)
{
    Rng rng(seed);
    return sparse::randomCsr(n, n, density, rng);
}

TEST(StreamAccounting, SparseStreamCoversCsrExactly)
{
    auto lhs = square(350, 0.04, 1);
    GrowSim sim((GrowConfig()));
    accel::SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 16;
    auto r = sim.run(p, accel::SimOptions{});
    // Effectual = nnz * 12 + rows * 8 (values + indices + pointers).
    Bytes effectual = lhs.nnz() * 12 + Bytes{350} * 8;
    EXPECT_EQ(r.effectualSparseBytes, effectual);
    // Fetched is line-rounded but within one line per 256 B chunk.
    EXPECT_GE(r.fetchedSparseBytes, effectual);
    EXPECT_LE(r.fetchedSparseBytes, effectual + effectual / 3 + 4096);
}

TEST(StreamAccounting, PreloadBytesMatchHdnLists)
{
    auto lhs = square(600, 0.03, 2);
    partition::Clustering clustering;
    clustering.clusterStart = {0, 200, 400, 600};
    std::vector<std::vector<NodeId>> lists = {
        {0, 5, 9}, {200, 210}, {599}};

    GrowConfig cfg;
    cfg.hdn.camEntries = 16;
    GrowSim sim(cfg);
    accel::SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 16;
    p.clustering = &clustering;
    p.hdnLists = &lists;
    auto r = sim.run(p, accel::SimOptions{});

    // Preload = per cluster: idList entries * 3 B + pinned rows * 128 B,
    // rounded to one 64 B line per DMA chunk at most.
    Bytes expect = 0;
    for (const auto &l : lists)
        expect += l.size() * 3 + l.size() * 16 * 8;
    Bytes actual = r.traffic.readBytes[static_cast<size_t>(
        mem::TrafficClass::HdnPreload)];
    EXPECT_GE(actual, expect);
    EXPECT_LE(actual, roundUp(expect, 64) + 64 * lists.size());
}

TEST(StreamAccounting, OutputBytesExactlyRowsTimesWidth)
{
    for (uint32_t width : {8u, 16u, 64u}) {
        auto lhs = square(100, 0.1, width);
        GrowSim sim((GrowConfig()));
        accel::SpDeGemmProblem p;
        p.lhs = &lhs;
        p.rhsCols = width;
        auto r = sim.run(p, accel::SimOptions{});
        EXPECT_EQ(r.traffic.writeBytes[static_cast<size_t>(
                      mem::TrafficClass::OutputWrite)],
                  Bytes{100} * roundUp(width * 8, 64));
    }
}

TEST(StreamAccounting, CombinationWeightPreloadOnce)
{
    auto lhs = square(200, 0.2, 5);
    GrowSim sim((GrowConfig()));
    accel::SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 32;
    p.rhsOnChip = true;
    auto r = sim.run(p, accel::SimOptions{});
    // W is K x N = 200 x 32 doubles, streamed once per PE (1 PE here).
    Bytes w = Bytes{200} * 32 * 8;
    Bytes actual = r.traffic.readBytes[static_cast<size_t>(
        mem::TrafficClass::HdnPreload)];
    EXPECT_GE(actual, w);
    EXPECT_LE(actual, w + 64 * ceilDiv(w, 256));
}

TEST(StreamAccounting, EffectualNeverExceedsFetched)
{
    for (uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
        auto lhs = square(300, 0.01 * static_cast<double>(seed), seed);
        GrowSim sim((GrowConfig()));
        accel::SpDeGemmProblem p;
        p.lhs = &lhs;
        p.rhsCols = 64;
        auto r = sim.run(p, accel::SimOptions{});
        EXPECT_LE(r.effectualSparseBytes, r.fetchedSparseBytes);
    }
}

TEST(StreamAccounting, CamLookupsEqualNnz)
{
    auto lhs = square(250, 0.05, 9);
    GrowSim sim((GrowConfig()));
    accel::SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 16;
    sim.run(p, accel::SimOptions{});
    uint64_t lookups = 0;
    for (const auto &s : sim.lastEngineStats())
        lookups += s.camLookups;
    EXPECT_EQ(lookups, lhs.nnz());
}

TEST(StreamAccounting, RowsProcessedCoverMatrix)
{
    auto lhs = square(500, 0.02, 11);
    GrowConfig cfg;
    cfg.numPes = 3;
    GrowSim sim(cfg);
    accel::SpDeGemmProblem p;
    p.lhs = &lhs;
    p.rhsCols = 16;
    sim.run(p, accel::SimOptions{});
    uint64_t rows = 0, products = 0;
    for (const auto &s : sim.lastEngineStats()) {
        rows += s.rowsProcessed;
        products += s.products;
    }
    EXPECT_EQ(rows, 500u);
    EXPECT_EQ(products, lhs.nnz());
}

} // namespace
} // namespace grow::core
