/**
 * @file
 * Analytical-estimator error envelope against the cycle-accurate
 * simulators.
 *
 * The closed-form engines (GCNAX, GAMMA, MatRaptor) must estimate
 * *exactly*: the cost model replays their own formulas with exact
 * reuse curves, so any drift is a bug in one of the two. The
 * event-driven row engine (GROW) is roofline-approximated; this test
 * pins the documented envelope (DESIGN.md "Mapping layer & analytical
 * cost model"): reuse counts exact, whole-inference cycles and traffic
 * within 5%, per-phase cycles within 5% median / 25% worst-case
 * (demand-LRU fill timing), per-phase traffic within 4% median / 12%
 * worst-case (LDN fill sharing) across configurations, datasets and
 * models.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "core/grow.hpp"
#include "costmodel/cost_model.hpp"
#include "driver/engine_factory.hpp"
#include "gcn/runner.hpp"
#include "gcn/workload.hpp"

namespace grow::costmodel {
namespace {

using gcn::GcnWorkload;

const GcnWorkload &
workloadFor(const char *dataset, gcn::ModelKind model)
{
    struct Key
    {
        std::string dataset;
        gcn::ModelKind model;
        GcnWorkload w;
    };
    static std::vector<std::unique_ptr<Key>> cache;
    for (const auto &k : cache)
        if (k->dataset == dataset && k->model == model)
            return k->w;
    gcn::WorkloadConfig c;
    c.tier = graph::ScaleTier::Unit;
    c.model = model;
    auto k = std::make_unique<Key>();
    k->dataset = dataset;
    k->model = model;
    k->w = gcn::buildWorkload(graph::datasetByName(dataset), c);
    cache.push_back(std::move(k));
    return cache.back()->w;
}

struct PhaseDrift
{
    std::string label;
    double cycleErr = 0.0;
    double trafficErr = 0.0;
};

struct Comparison
{
    gcn::InferenceResult sim;
    PlanEstimate est;
    std::vector<PhaseDrift> phases;
    double cycleErr = 0.0;   ///< whole-inference relative error
    double trafficErr = 0.0; ///< whole-inference relative error
};

double
relErr(double est, double sim)
{
    return sim == 0.0 ? 0.0 : std::abs(est - sim) / sim;
}

Comparison
compare(accel::AcceleratorSim &engine, const GcnWorkload &w,
        bool use_partitioning)
{
    gcn::RunnerOptions opt;
    opt.usePartitioning = use_partitioning;
    auto plan = gcn::buildPhasePlan(w, opt);
    AnalyticalCostModel model(plan);

    Comparison c;
    c.est = model.estimate(engine.mapping());
    c.sim = gcn::runInference(engine, w, opt);
    EXPECT_EQ(c.est.phases.size(), c.sim.phases.size());
    for (size_t i = 0;
         i < std::min(c.est.phases.size(), c.sim.phases.size()); ++i) {
        PhaseDrift d;
        d.label = c.est.phases[i].label;
        d.cycleErr = relErr(
            static_cast<double>(c.est.phases[i].cycles),
            static_cast<double>(c.sim.phases[i].result.cycles));
        d.trafficErr = relErr(
            static_cast<double>(c.est.phases[i].trafficBytes),
            static_cast<double>(c.sim.phases[i].result.traffic.total()));
        c.phases.push_back(std::move(d));
    }
    c.cycleErr = relErr(static_cast<double>(c.est.totalCycles),
                        static_cast<double>(c.sim.totalCycles));
    c.trafficErr =
        relErr(static_cast<double>(c.est.trafficBytes),
               static_cast<double>(c.sim.totalTrafficBytes()));
    return c;
}

double
median(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

// ---- Closed-form engines: exact by construction ----------------------

TEST(EstimatorExact, MatRaptor)
{
    accel::MatRaptorSim sim(driver::matraptorDefaultConfig());
    auto c = compare(sim, workloadFor("flickr", gcn::ModelKind::Gcn),
                     false);
    EXPECT_EQ(c.est.totalCycles, c.sim.totalCycles);
    EXPECT_EQ(c.est.trafficBytes, c.sim.totalTrafficBytes());
    EXPECT_EQ(c.est.macOps, c.sim.macOps);
}

TEST(EstimatorExact, Gamma)
{
    accel::GammaSim sim(driver::gammaDefaultConfig());
    auto c = compare(sim, workloadFor("flickr", gcn::ModelKind::Gcn),
                     false);
    EXPECT_EQ(c.est.totalCycles, c.sim.totalCycles);
    EXPECT_EQ(c.est.trafficBytes, c.sim.totalTrafficBytes());
    // The Mattson stack-distance curve must reproduce the simulated
    // fiber cache exactly (aggregation-phase accumulation only).
    EXPECT_EQ(c.est.cacheHits, c.sim.cacheHits);
    EXPECT_EQ(c.est.cacheMisses, c.sim.cacheMisses);
}

TEST(EstimatorExact, Gcnax)
{
    accel::GcnaxSim sim(driver::gcnaxDefaultConfig());
    auto c = compare(sim, workloadFor("flickr", gcn::ModelKind::Gcn),
                     false);
    EXPECT_EQ(c.est.totalCycles, c.sim.totalCycles);
    EXPECT_EQ(c.est.trafficBytes, c.sim.totalTrafficBytes());
}

// ---- GROW: exact reuse counts, bounded roofline drift ----------------

struct GrowCase
{
    const char *name;
    core::GrowConfig config;
    bool usePartitioning;
    const char *dataset;
    gcn::ModelKind model;
};

std::vector<GrowCase>
growCases()
{
    std::vector<GrowCase> cases;
    cases.push_back({"grow/flickr", driver::growDefaultConfig(), true,
                     "flickr", gcn::ModelKind::Gcn});
    cases.push_back({"grow-nogp/flickr", driver::growDefaultConfig(),
                     false, "flickr", gcn::ModelKind::Gcn});
    cases.push_back({"grow-lru/flickr", driver::growLruConfig(), true,
                     "flickr", gcn::ModelKind::Gcn});
    cases.push_back({"grow-nocache/flickr", driver::growNoCacheConfig(),
                     true, "flickr", gcn::ModelKind::Gcn});
    core::GrowConfig pe4 = driver::growDefaultConfig();
    pe4.numPes = 4;
    cases.push_back(
        {"grow-pe4/flickr", pe4, true, "flickr", gcn::ModelKind::Gcn});
    cases.push_back({"grow/gat", driver::growDefaultConfig(), true,
                     "flickr", gcn::ModelKind::Gat});
    cases.push_back({"grow/pokec", driver::growDefaultConfig(), true,
                     "pokec", gcn::ModelKind::Gcn});
    return cases;
}

TEST(EstimatorEnvelope, GrowReuseCountsExact)
{
    for (const auto &gc : growCases()) {
        // Per-PE private LRU caches diverge from the global reference
        // stream; the exactness claim is for the shipped pinned policy
        // (any PE count) and single-PE LRU.
        if (gc.config.hdnPolicy == core::HdnPolicy::Lru &&
            gc.config.numPes > 1)
            continue;
        core::GrowSim engine(gc.config);
        auto c = compare(engine, workloadFor(gc.dataset, gc.model),
                         gc.usePartitioning);
        EXPECT_EQ(c.est.cacheHits, c.sim.cacheHits) << gc.name;
        EXPECT_EQ(c.est.cacheMisses, c.sim.cacheMisses) << gc.name;
    }
}

TEST(EstimatorEnvelope, GrowCyclesAndTrafficBounded)
{
    std::vector<double> cycleErrs;
    std::vector<double> trafficErrs;
    for (const auto &gc : growCases()) {
        core::GrowSim engine(gc.config);
        auto c = compare(engine, workloadFor(gc.dataset, gc.model),
                         gc.usePartitioning);
        for (const auto &d : c.phases) {
            std::cout << "[envelope] " << gc.name << " " << d.label
                      << " cycleErr=" << d.cycleErr
                      << " trafficErr=" << d.trafficErr << "\n";
            cycleErrs.push_back(d.cycleErr);
            trafficErrs.push_back(d.trafficErr);
            // Documented per-phase worst case (measured: 19% cycles on
            // LRU -- insert-at-fill vs insert-at-reference -- and 9.2%
            // traffic from LDN fill sharing).
            EXPECT_LE(d.cycleErr, 0.25) << gc.name << " " << d.label;
            EXPECT_LE(d.trafficErr, 0.12) << gc.name << " " << d.label;
        }
        std::cout << "[envelope] " << gc.name
                  << " TOTAL cycleErr=" << c.cycleErr
                  << " trafficErr=" << c.trafficErr << "\n";
        // Whole-inference drift (what the DSE ranks on).
        EXPECT_LE(c.cycleErr, 0.05) << gc.name;
        EXPECT_LE(c.trafficErr, 0.05) << gc.name;
    }
    // Documented envelope: median per-phase error across the matrix.
    EXPECT_LE(median(cycleErrs), 0.05);
    EXPECT_LE(median(trafficErrs), 0.04);
    const double maxCycle =
        *std::max_element(cycleErrs.begin(), cycleErrs.end());
    std::cout << "[envelope] median cycleErr=" << median(cycleErrs)
              << " max cycleErr=" << maxCycle
              << " median trafficErr=" << median(trafficErrs) << "\n";
}

} // namespace
} // namespace grow::costmodel
