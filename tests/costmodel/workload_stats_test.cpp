/**
 * @file
 * OperandStats reuse curves against brute-force cache replay.
 *
 * The Mattson stack-distance histogram and the pinned-rank histogram
 * are single-pass summaries of the whole capacity axis; these tests
 * replay actual caches (mem::LruRowCache, mem::HdnCache semantics) at
 * several capacities and demand bit-equal hit counts.
 */
#include <gtest/gtest.h>

#include <vector>

#include "costmodel/workload_stats.hpp"
#include "mem/lru_cache.hpp"
#include "sparse/coo_matrix.hpp"
#include "sparse/csr_matrix.hpp"
#include "util/random.hpp"

namespace grow::costmodel {
namespace {

sparse::CsrMatrix
randomMatrix(uint32_t rows, uint32_t cols, uint64_t nnz, uint64_t seed)
{
    Rng rng(seed);
    sparse::CooMatrix coo(rows, cols);
    std::vector<bool> used(static_cast<size_t>(rows) * cols, false);
    uint64_t placed = 0;
    while (placed < nnz) {
        const auto r = static_cast<NodeId>(rng.next() % rows);
        const auto c = static_cast<NodeId>(rng.next() % cols);
        const size_t slot = static_cast<size_t>(r) * cols + c;
        if (used[slot])
            continue;
        used[slot] = true;
        coo.add(r, c, 1.0);
        ++placed;
    }
    coo.canonicalize();
    return sparse::CsrMatrix::fromCoo(coo);
}

TEST(OperandStats, LruCurveMatchesCacheReplay)
{
    auto m = randomMatrix(64, 48, 600, 7);
    auto s = OperandStats::compute(m, nullptr, nullptr);
    EXPECT_EQ(s.nnz, m.nnz());
    EXPECT_EQ(s.csrStreamBytes, m.streamBytes());

    const Bytes rowBytes = 128;
    for (uint32_t rowsCap : {1u, 2u, 3u, 5u, 8u, 16u, 47u, 48u, 100u}) {
        mem::LruRowCache cache(rowsCap * rowBytes, rowBytes);
        for (uint32_t r = 0; r < m.rows(); ++r)
            for (NodeId k : m.rowCols(r))
                if (!cache.lookup(k))
                    cache.insert(k);
        EXPECT_EQ(s.lruHits(cache.maxRows()), cache.hits())
            << "capacity " << rowsCap;
    }
}

TEST(OperandStats, LruCurveIsMonotone)
{
    auto m = randomMatrix(32, 40, 300, 11);
    auto s = OperandStats::compute(m, nullptr, nullptr);
    uint64_t prev = 0;
    for (uint32_t cap = 0; cap <= 64; ++cap) {
        uint64_t h = s.lruHits(cap);
        EXPECT_GE(h, prev);
        EXPECT_LE(h, s.nnz);
        prev = h;
    }
    EXPECT_EQ(s.lruHits(0), 0u);
    // Unbounded capacity hits every non-cold reference.
    mem::LruRowCache big(1u << 30, 1);
    for (uint32_t r = 0; r < m.rows(); ++r)
        for (NodeId k : m.rowCols(r))
            if (!big.lookup(k))
                big.insert(k);
    EXPECT_EQ(s.lruHits(1u << 20), big.hits());
}

TEST(OperandStats, PinnedCurveMatchesMembershipReplay)
{
    auto m = randomMatrix(40, 32, 400, 3);

    // Two clusters over the rows, each pinning its own ranked list.
    partition::Clustering cl;
    cl.clusterStart = {0, 17, 40};
    std::vector<std::vector<NodeId>> lists = {
        {5, 1, 9, 30, 2}, {8, 5, 0, 31}};

    auto s = OperandStats::compute(m, &cl, &lists);
    ASSERT_EQ(s.clusterListLens.size(), 2u);
    EXPECT_EQ(s.clusterListLens[0], 5u);
    EXPECT_EQ(s.clusterListLens[1], 4u);
    ASSERT_EQ(s.clusterNnz.size(), 2u);
    EXPECT_EQ(s.clusterNnz[0] + s.clusterNnz[1], m.nnz());

    for (uint32_t resident : {0u, 1u, 2u, 3u, 4u, 5u, 9u}) {
        // Brute force: a reference hits iff its column is among the
        // first `resident` entries of its row's cluster list.
        uint64_t expect = 0;
        for (uint32_t c = 0; c < 2; ++c) {
            const auto &ids = lists[c];
            for (uint32_t r = cl.clusterStart[c];
                 r < cl.clusterStart[c + 1]; ++r)
                for (NodeId k : m.rowCols(r))
                    for (uint32_t i = 0;
                         i < std::min<uint32_t>(resident,
                                                static_cast<uint32_t>(
                                                    ids.size()));
                         ++i)
                        if (ids[i] == k) {
                            ++expect;
                            break;
                        }
        }
        EXPECT_EQ(s.pinnedHits(resident), expect)
            << "resident " << resident;
    }
}

TEST(OperandStats, GlobalPinnedCurveRanksByFrequency)
{
    // Column 3 referenced 3x, column 1 2x, column 0 1x; global ranks
    // follow (frequency desc, id asc): 3, 1, 0, then untouched ids.
    sparse::CooMatrix coo(4, 5);
    coo.add(0, 3, 1.0);
    coo.add(1, 3, 1.0);
    coo.add(2, 3, 1.0);
    coo.add(1, 1, 1.0);
    coo.add(3, 1, 1.0);
    coo.add(2, 0, 1.0);
    coo.canonicalize();
    auto m = sparse::CsrMatrix::fromCoo(coo);
    auto s = OperandStats::compute(m, nullptr, nullptr);

    EXPECT_EQ(s.pinnedHits(0), 0u);
    EXPECT_EQ(s.pinnedHits(1), 3u); // column 3 pinned
    EXPECT_EQ(s.pinnedHits(2), 5u); // + column 1
    EXPECT_EQ(s.pinnedHits(3), 6u); // + column 0: every reference
    EXPECT_EQ(s.pinnedHits(100), 6u);
    EXPECT_TRUE(s.clusterListLens.empty());
    EXPECT_TRUE(s.clusterNnz.empty());
}

} // namespace
} // namespace grow::costmodel
