/**
 * @file
 * SweepDriver: parallel fan-out must be observably identical to serial
 * execution -- same ordering, same bit-exact metrics -- and errors in
 * any job must surface, not vanish into a worker thread.
 */
#include <gtest/gtest.h>

#include "driver/sweep_driver.hpp"

namespace grow::driver {
namespace {

gcn::GcnWorkload
unitWorkload(const std::string &name, uint32_t layers = 2)
{
    gcn::WorkloadConfig c;
    c.tier = graph::ScaleTier::Unit;
    c.numLayers = layers;
    return gcn::buildWorkload(graph::datasetByName(name), c);
}

/** Bit-exact comparison of everything an InferenceResult reports. */
void
expectIdentical(const gcn::InferenceResult &a,
                const gcn::InferenceResult &b)
{
    EXPECT_EQ(a.engine, b.engine);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.combinationCycles, b.combinationCycles);
    EXPECT_EQ(a.aggregationCycles, b.aggregationCycles);
    EXPECT_EQ(a.macOps, b.macOps);
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses);
    for (size_t i = 0; i < mem::kNumTrafficClasses; ++i) {
        EXPECT_EQ(a.traffic.readBytes[i], b.traffic.readBytes[i]);
        EXPECT_EQ(a.traffic.writeBytes[i], b.traffic.writeBytes[i]);
    }
    // Energy is pure arithmetic over activity counts: identical inputs
    // must give bit-identical doubles.
    EXPECT_EQ(a.energy.total(), b.energy.total());
    ASSERT_EQ(a.phases.size(), b.phases.size());
    for (size_t i = 0; i < a.phases.size(); ++i) {
        EXPECT_EQ(a.phases[i].layer, b.phases[i].layer);
        EXPECT_EQ(a.phases[i].result.phase, b.phases[i].result.phase);
        EXPECT_EQ(a.phases[i].result.cycles, b.phases[i].result.cycles);
        EXPECT_EQ(a.phases[i].result.macOps, b.phases[i].result.macOps);
    }
}

TEST(SweepDriver, EngineJobAdoptsLayoutConvention)
{
    auto w = unitWorkload("cora");
    auto grow = makeEngineJob("grow", w);
    EXPECT_TRUE(grow.options.usePartitioning);
    EXPECT_EQ(grow.label, "cora/grow");
    auto base = makeEngineJob("gcnax", w);
    EXPECT_FALSE(base.options.usePartitioning);
    EXPECT_EQ(base.makeEngine()->name(), "gcnax");
}

TEST(SweepDriver, UnknownEngineKeyIsFatal)
{
    auto w = unitWorkload("cora");
    EXPECT_ANY_THROW(makeEngineJob("not-an-engine", w));
}

TEST(SweepDriver, EveryKnownEngineKeyConstructs)
{
    auto keys = knownEngineKeys();
    EXPECT_GE(keys.size(), 10u);
    for (const auto &key : keys) {
        auto spec = engineByKey(key);
        EXPECT_EQ(spec.key, key);
        ASSERT_TRUE(static_cast<bool>(spec.make)) << key;
        EXPECT_NE(spec.make(), nullptr) << key;
    }
}

TEST(SweepDriver, ParallelMatchesSerialBitExactly)
{
    // >= 8 combinations spanning engine x dataset x depth.
    auto cora2 = unitWorkload("cora");
    auto cite2 = unitWorkload("citeseer");
    auto cora3 = unitWorkload("cora", 3);
    auto cite1 = unitWorkload("citeseer", 1);

    std::vector<SweepJob> jobs;
    for (const auto *w : {&cora2, &cite2, &cora3, &cite1}) {
        jobs.push_back(makeEngineJob("grow", *w));
        jobs.push_back(makeEngineJob("gcnax", *w));
        jobs.push_back(makeEngineJob("grow-nogp", *w));
    }
    ASSERT_GE(jobs.size(), 8u);

    SweepDriver serial(1);
    SweepDriver parallel(4);
    EXPECT_EQ(serial.numThreads(), 1u);
    EXPECT_EQ(parallel.numThreads(), 4u);

    auto rs = serial.runAll(jobs);
    auto rp = parallel.runAll(jobs);
    ASSERT_EQ(rs.size(), jobs.size());
    ASSERT_EQ(rp.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(rs[i].label, jobs[i].label);
        EXPECT_EQ(rp[i].label, jobs[i].label);
        expectIdentical(rs[i].inference, rp[i].inference);
    }
}

TEST(SweepDriver, RepeatedParallelRunsAreDeterministic)
{
    auto w = unitWorkload("cora");
    std::vector<SweepJob> jobs;
    for (int rep = 0; rep < 4; ++rep)
        jobs.push_back(makeEngineJob("grow", w));
    SweepDriver pool(3);
    auto r1 = pool.runAll(jobs);
    auto r2 = pool.runAll(jobs);
    for (size_t i = 0; i < jobs.size(); ++i) {
        expectIdentical(r1[i].inference, r2[i].inference);
        // Identical jobs must also agree with each other.
        expectIdentical(r1[0].inference, r1[i].inference);
    }
}

TEST(SweepDriver, JobErrorsPropagateToCaller)
{
    auto w = unitWorkload("cora");
    std::vector<SweepJob> jobs;
    jobs.push_back(makeEngineJob("grow", w));
    SweepJob bad = makeEngineJob("grow", w);
    bad.options.sim.functional = true; // workload has no weights
    jobs.push_back(bad);
    SweepDriver pool(2);
    EXPECT_ANY_THROW(pool.runAll(jobs));
}

TEST(SweepDriver, MidSweepErrorReportsAllFailuresAndSkippedLabels)
{
    auto w = unitWorkload("cora");
    std::vector<SweepJob> jobs;
    jobs.push_back(makeEngineJob("grow", w)); // runs fine
    SweepJob bad = makeEngineJob("grow", w);
    bad.options.sim.functional = true; // workload has no weights
    bad.label = "cora/grow-BROKEN";
    jobs.push_back(bad);
    auto late = makeEngineJob("gcnax", w); // skipped by fail-fast
    late.label = "cora/gcnax-LATER";
    jobs.push_back(late);

    // Single-threaded: the failure at index 1 deterministically skips
    // index 2. The aggregate message must name both the failing job
    // and the skipped one -- labels never vanish into the pool.
    SweepDriver pool(1);
    try {
        pool.runAll(jobs);
        FAIL() << "expected the sweep to throw";
    } catch (const std::runtime_error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("cora/grow-BROKEN"), std::string::npos) << msg;
        EXPECT_NE(msg.find("cora/gcnax-LATER"), std::string::npos) << msg;
        EXPECT_NE(msg.find("skipped by fail-fast"), std::string::npos)
            << msg;
    }
}

TEST(SweepDriver, AllErrorsAggregatedInJobOrder)
{
    auto w = unitWorkload("cora");
    std::vector<SweepJob> jobs;
    for (int i = 0; i < 3; ++i) {
        SweepJob bad = makeEngineJob("grow", w);
        bad.options.sim.functional = true;
        bad.label = "bad" + std::to_string(i);
        jobs.push_back(bad);
    }
    // One worker claims every job before observing the failure flag is
    // impossible; but serial execution guarantees only job 0 runs.
    // With one thread the report must still account for all three.
    SweepDriver pool(1);
    try {
        pool.runAll(jobs);
        FAIL() << "expected the sweep to throw";
    } catch (const std::runtime_error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("bad0"), std::string::npos) << msg;
        // bad1/bad2 were never claimed: reported as skipped, not lost.
        EXPECT_NE(msg.find("bad1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("bad2"), std::string::npos) << msg;
    }
}

TEST(SweepDriver, OwnedWorkloadJobKeepsWorkloadAlive)
{
    std::vector<SweepJob> jobs;
    {
        // The shared_ptr goes out of scope before runAll: the job's
        // co-ownership must keep the workload alive.
        auto w = std::make_shared<const gcn::GcnWorkload>(
            unitWorkload("cora"));
        jobs.push_back(makeEngineJob("grow", w));
        jobs.push_back(makeEngineJob("gcnax", std::move(w)));
    }
    SweepDriver pool(2);
    auto outcomes = pool.runAll(jobs);
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0].label, "cora/grow");
    EXPECT_EQ(outcomes[1].label, "cora/gcnax");
    EXPECT_GT(outcomes[0].inference.totalCycles, 0u);
    EXPECT_GT(outcomes[1].inference.totalCycles, 0u);
}

TEST(SweepDriver, EmptySweepIsANoOp)
{
    SweepDriver pool(2);
    EXPECT_TRUE(pool.runAll({}).empty());
}

} // namespace
} // namespace grow::driver
