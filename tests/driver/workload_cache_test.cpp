/**
 * @file
 * WorkloadCache: graph artefacts must be built exactly once per
 * (dataset, tier, partition plan) and shared across depths; the
 * on-disk layer must round-trip bit-identically and *never* trust a
 * corrupted or stale file.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "driver/workload_cache.hpp"

namespace grow::driver {
namespace {

namespace fs = std::filesystem;

gcn::WorkloadConfig
unitConfig(uint32_t layers = 2)
{
    gcn::WorkloadConfig c;
    c.tier = graph::ScaleTier::Unit;
    c.numLayers = layers;
    return c;
}

/** A scratch directory unique to the current test. */
std::string
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("growcache_" + name);
    fs::remove_all(dir);
    return dir.string();
}

void
expectArtifactsIdentical(const gcn::GraphArtifacts &a,
                         const gcn::GraphArtifacts &b)
{
    ASSERT_NE(a.spec, nullptr);
    ASSERT_NE(b.spec, nullptr);
    EXPECT_EQ(a.spec->name, b.spec->name);
    EXPECT_EQ(a.tier, b.tier);
    EXPECT_EQ(a.maxClusterNodes, b.maxClusterNodes);
    EXPECT_EQ(a.graph().offsets(), b.graph().offsets());
    EXPECT_EQ(a.graph().adjacency(), b.graph().adjacency());
    EXPECT_EQ(a.adjacency().rowPtr(), b.adjacency().rowPtr());
    EXPECT_EQ(a.adjacency().colIdx(), b.adjacency().colIdx());
    EXPECT_EQ(a.adjacency().values(), b.adjacency().values());
    ASSERT_EQ(a.hasPartitioning, b.hasPartitioning);
    if (a.hasPartitioning) {
        EXPECT_EQ(a.relabel().newToOld, b.relabel().newToOld);
        EXPECT_EQ(a.relabel().clustering.clusterStart,
                  b.relabel().clustering.clusterStart);
        EXPECT_EQ(a.hdnLists(), b.hdnLists());
        EXPECT_EQ(a.adjacencyPartitioned().rowPtr(),
                  b.adjacencyPartitioned().rowPtr());
        EXPECT_EQ(a.adjacencyPartitioned().colIdx(),
                  b.adjacencyPartitioned().colIdx());
        EXPECT_EQ(a.adjacencyPartitioned().values(),
                  b.adjacencyPartitioned().values());
    }
    ASSERT_EQ(a.hasSampling, b.hasSampling);
    if (a.hasSampling) {
        EXPECT_EQ(a.plan.sampleFanout, b.plan.sampleFanout);
        EXPECT_EQ(a.sampleSeed, b.sampleSeed);
        EXPECT_EQ(a.adjacencySampled.rowPtr(),
                  b.adjacencySampled.rowPtr());
        EXPECT_EQ(a.adjacencySampled.colIdx(),
                  b.adjacencySampled.colIdx());
        EXPECT_EQ(a.adjacencySampled.values(),
                  b.adjacencySampled.values());
        EXPECT_EQ(a.adjacencySampledPartitioned.rowPtr(),
                  b.adjacencySampledPartitioned.rowPtr());
        EXPECT_EQ(a.adjacencySampledPartitioned.colIdx(),
                  b.adjacencySampledPartitioned.colIdx());
        EXPECT_EQ(a.adjacencySampledPartitioned.values(),
                  b.adjacencySampledPartitioned.values());
    }
}

TEST(WorkloadCache, DepthSweepBuildsArtifactsOncePerDataset)
{
    // The acceptance probe: depths 1-4 over two datasets must run
    // graph synthesis + partitioning exactly once per dataset.
    WorkloadCache cache;
    std::vector<gcn::GcnWorkload> workloads;
    for (const char *name : {"cora", "citeseer"})
        for (uint32_t depth = 1; depth <= 4; ++depth)
            workloads.push_back(cache.workload(
                graph::datasetByName(name), unitConfig(depth)));
    EXPECT_EQ(cache.stats().builds, 2u);
    EXPECT_EQ(cache.stats().memoryHits, 6u);
    EXPECT_EQ(cache.stats().diskLoads, 0u);
    // All depths of one dataset share one bundle instance.
    for (int i = 1; i < 4; ++i) {
        EXPECT_EQ(workloads[0].artifacts.get(), workloads[i].artifacts.get());
        EXPECT_EQ(workloads[4].artifacts.get(),
                  workloads[4 + i].artifacts.get());
    }
    EXPECT_NE(workloads[0].artifacts.get(), workloads[4].artifacts.get());
}

TEST(WorkloadCache, CachedWorkloadMatchesDirectBuild)
{
    WorkloadCache cache;
    auto cached = cache.workload(graph::datasetByName("cora"),
                                 unitConfig(3));
    auto direct = gcn::buildWorkload(graph::datasetByName("cora"),
                                     unitConfig(3));
    expectArtifactsIdentical(*cached.artifacts, *direct.artifacts);
    ASSERT_EQ(cached.features.size(), direct.features.size());
    for (size_t i = 0; i < cached.features.size(); ++i) {
        EXPECT_EQ(cached.features[i].colIdx(), direct.features[i].colIdx());
        EXPECT_EQ(cached.features[i].values(), direct.features[i].values());
    }
}

TEST(WorkloadCache, DistinctPartitionPlansGetDistinctArtifacts)
{
    WorkloadCache cache;
    const auto &spec = graph::datasetByName("cora");
    auto a = cache.artifacts(spec, graph::ScaleTier::Unit, {});
    gcn::PartitionPlan smaller;
    smaller.targetClusterSize = 128;
    auto b = cache.artifacts(spec, graph::ScaleTier::Unit, smaller);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(cache.stats().builds, 2u);
    EXPECT_EQ(b->maxClusterNodes, 128u);
}

TEST(WorkloadCache, DiskRoundTripIsBitIdentical)
{
    const std::string dir = scratchDir("roundtrip");
    const auto &spec = graph::datasetByName("citeseer");
    WorkloadCache cold(dir);
    auto built = cold.artifacts(spec, graph::ScaleTier::Unit, {});
    EXPECT_EQ(cold.stats().builds, 1u);
    EXPECT_EQ(cold.stats().diskStores, 1u);

    // A second cache over the same directory loads instead of building.
    WorkloadCache warm(dir);
    auto loaded = warm.artifacts(spec, graph::ScaleTier::Unit, {});
    EXPECT_EQ(warm.stats().builds, 0u);
    EXPECT_EQ(warm.stats().diskLoads, 1u);
    expectArtifactsIdentical(*built, *loaded);

    // And the workloads layered on top are bit-identical too.
    auto a = cold.workload(spec, unitConfig());
    auto b = warm.workload(spec, unitConfig());
    EXPECT_EQ(a.x(0).colIdx(), b.x(0).colIdx());
    EXPECT_EQ(a.x(0).values(), b.x(0).values());
    fs::remove_all(dir);
}

TEST(WorkloadCache, SaveLoadFunctionsRoundTrip)
{
    const std::string dir = scratchDir("saveload");
    const auto &spec = graph::datasetByName("cora");
    auto key = ArtifactKey::of(spec, graph::ScaleTier::Unit, {});
    auto built = gcn::buildGraphArtifacts(spec, graph::ScaleTier::Unit);
    const std::string path = dir + "/cora.growart";
    ASSERT_TRUE(saveArtifacts(path, *built));
    auto loaded = loadArtifacts(path, key);
    ASSERT_NE(loaded, nullptr);
    expectArtifactsIdentical(*built, *loaded);
    fs::remove_all(dir);
}

TEST(WorkloadCache, LoadRejectsWrongKey)
{
    const std::string dir = scratchDir("wrongkey");
    const auto &spec = graph::datasetByName("cora");
    auto built = gcn::buildGraphArtifacts(spec, graph::ScaleTier::Unit);
    const std::string path = dir + "/cora.growart";
    ASSERT_TRUE(saveArtifacts(path, *built));

    auto other = ArtifactKey::of(graph::datasetByName("citeseer"),
                                 graph::ScaleTier::Unit, {});
    EXPECT_EQ(loadArtifacts(path, other), nullptr);
    auto wrongTier = ArtifactKey::of(spec, graph::ScaleTier::Tiny, {});
    EXPECT_EQ(loadArtifacts(path, wrongTier), nullptr);
    fs::remove_all(dir);
}

TEST(WorkloadCache, CorruptedFileFallsBackToRebuild)
{
    const std::string dir = scratchDir("corrupt");
    const auto &spec = graph::datasetByName("cora");
    {
        WorkloadCache cache(dir);
        cache.artifacts(spec, graph::ScaleTier::Unit, {});
    }
    const auto key = ArtifactKey::of(spec, graph::ScaleTier::Unit, {});
    const std::string path =
        (fs::path(dir) / (key.fingerprint() + ".growart")).string();
    ASSERT_TRUE(fs::exists(path));

    // Flip a payload byte: the checksum must catch it.
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(64);
        char c = 0;
        f.seekg(64);
        f.get(c);
        f.seekp(64);
        f.put(static_cast<char>(c ^ 0x5a));
    }
    EXPECT_EQ(loadArtifacts(path, key), nullptr);

    // The cache rebuilds (and counts the bad file) instead of crashing.
    WorkloadCache cache(dir);
    auto rebuilt = cache.artifacts(spec, graph::ScaleTier::Unit, {});
    ASSERT_NE(rebuilt, nullptr);
    EXPECT_EQ(cache.stats().builds, 1u);
    EXPECT_EQ(cache.stats().diskLoads, 0u);
    EXPECT_EQ(cache.stats().diskFailures, 1u);
    fs::remove_all(dir);
}

TEST(WorkloadCache, TruncatedAndGarbageFilesAreRejected)
{
    const std::string dir = scratchDir("truncate");
    const auto &spec = graph::datasetByName("cora");
    const auto key = ArtifactKey::of(spec, graph::ScaleTier::Unit, {});
    auto built = gcn::buildGraphArtifacts(spec, graph::ScaleTier::Unit);
    const std::string path = dir + "/t.growart";
    ASSERT_TRUE(saveArtifacts(path, *built));

    // Truncate to half: length checks / checksum must reject it.
    const auto full = fs::file_size(path);
    fs::resize_file(path, full / 2);
    EXPECT_EQ(loadArtifacts(path, key), nullptr);

    // Pure garbage without even the magic.
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << "this is not an artefact file";
    }
    EXPECT_EQ(loadArtifacts(path, key), nullptr);

    // Missing file.
    EXPECT_EQ(loadArtifacts(dir + "/absent.growart", key), nullptr);
    fs::remove_all(dir);
}

TEST(WorkloadCache, StaleFormatVersionIsRejected)
{
    const std::string dir = scratchDir("stale");
    const auto &spec = graph::datasetByName("cora");
    const auto key = ArtifactKey::of(spec, graph::ScaleTier::Unit, {});
    auto built = gcn::buildGraphArtifacts(spec, graph::ScaleTier::Unit);
    const std::string path = dir + "/v.growart";
    ASSERT_TRUE(saveArtifacts(path, *built));

    // Bump the version field (bytes 8..11, after the 8-byte magic).
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        uint32_t stale = kArtifactFormatVersion + 1;
        f.seekp(8);
        f.write(reinterpret_cast<const char *>(&stale), sizeof(stale));
    }
    EXPECT_EQ(loadArtifacts(path, key), nullptr);
    fs::remove_all(dir);
}

TEST(WorkloadCache, StaleDatasetSpecIsRejected)
{
    // The payload stores a fingerprint of the dataset's synthesis
    // parameters; a file written under an edited registry entry must
    // miss. Simulate the edit by patching the stored fingerprint and
    // re-sealing the checksum, so only the fingerprint comparison can
    // reject the file.
    const std::string dir = scratchDir("specstale");
    const auto &spec = graph::datasetByName("cora");
    const auto key = ArtifactKey::of(spec, graph::ScaleTier::Unit, {});
    auto built = gcn::buildGraphArtifacts(spec, graph::ScaleTier::Unit);
    const std::string path = dir + "/s.growart";
    ASSERT_TRUE(saveArtifacts(path, *built));

    std::string raw;
    {
        std::ifstream f(path, std::ios::binary);
        std::ostringstream oss;
        oss << f.rdbuf();
        raw = oss.str();
    }
    // Layout: 8B magic + 4B version | payload | 8B FNV-1a checksum.
    // The payload starts with the name (4B length + bytes) followed by
    // the 8-byte spec fingerprint.
    const size_t header = 12;
    const size_t fpOffset = header + 4 + spec.name.size();
    raw[fpOffset] ^= 0x5a;
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t i = header; i < raw.size() - 8; ++i) {
        h ^= static_cast<unsigned char>(raw[i]);
        h *= 0x100000001b3ULL;
    }
    std::memcpy(raw.data() + raw.size() - 8, &h, 8);
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << raw;
    }
    EXPECT_EQ(loadArtifacts(path, key), nullptr);
    fs::remove_all(dir);
}

TEST(WorkloadCache, SampledAdjacencyRoundTripsBitIdentical)
{
    // The SAGEConv fanout-k operand is part of the artefact bundle:
    // seeded sampling must survive the disk cache bit-for-bit.
    const std::string dir = scratchDir("sampled");
    const auto &spec = graph::datasetByName("cora");
    gcn::PartitionPlan plan;
    plan.sampleFanout = 5;

    WorkloadCache cold(dir);
    auto built = cold.artifacts(spec, graph::ScaleTier::Unit, plan);
    ASSERT_TRUE(built->hasSampling);
    EXPECT_EQ(built->plan.sampleFanout, 5u);
    // Both the unsampled base and the sampled extension are stored.
    EXPECT_EQ(cold.stats().diskStores, 2u);

    WorkloadCache warm(dir);
    auto loaded = warm.artifacts(spec, graph::ScaleTier::Unit, plan);
    EXPECT_EQ(warm.stats().builds, 0u);
    // The base bundle and the sampled extension load separately.
    EXPECT_EQ(warm.stats().diskLoads, 2u);
    expectArtifactsIdentical(*built, *loaded);

    // And the sample matches a fresh seeded build: determinism holds
    // through the cache, not just within one process.
    auto direct = gcn::buildGraphArtifacts(spec, graph::ScaleTier::Unit,
                                           plan);
    expectArtifactsIdentical(*direct, *loaded);
    fs::remove_all(dir);
}

TEST(WorkloadCache, SampledBundleSharesItsBaseInMemoryAndOnDisk)
{
    // The sampled bundle must HOLD the unsampled base, not copy it:
    // one graph-level payload in memory regardless of fanouts, and an
    // extension file that carries only the sampled operand.
    const std::string dir = scratchDir("sharedbase");
    const auto &spec = graph::datasetByName("cora");
    gcn::PartitionPlan sampled;
    // A small fanout keeps the sampled operand tiny relative to the
    // full graph payload, making the size assertion below meaningful.
    sampled.sampleFanout = 2;

    WorkloadCache cache(dir);
    auto base = cache.artifacts(spec, graph::ScaleTier::Unit, {});
    auto ext = cache.artifacts(spec, graph::ScaleTier::Unit, sampled);
    ASSERT_TRUE(ext->hasSampling);
    // Same instance, not an equal copy.
    EXPECT_EQ(ext->base.get(), base.get());
    EXPECT_EQ(&ext->graph(), &base->graph());
    EXPECT_EQ(&ext->adjacency(), &base->adjacency());
    // The extension's own payload stays empty.
    EXPECT_EQ(ext->own.graph.numNodes(), 0u);
    EXPECT_EQ(ext->own.adjacency.rows(), 0u);

    // On disk the extension is a small file: the graph-level payload
    // is serialized exactly once, under the base key.
    auto fileSize = [&](const gcn::PartitionPlan &plan) {
        auto key = ArtifactKey::of(spec, graph::ScaleTier::Unit, plan);
        return fs::file_size(fs::path(dir) /
                             (key.fingerprint() + ".growart"));
    };
    EXPECT_LT(fileSize(sampled), fileSize({}) / 2);

    // A warm cache re-attaches the loaded extension to the (loaded)
    // base bundle instance.
    WorkloadCache warm(dir);
    auto warmExt = warm.artifacts(spec, graph::ScaleTier::Unit, sampled);
    auto warmBase = warm.artifacts(spec, graph::ScaleTier::Unit, {});
    EXPECT_EQ(warm.stats().builds, 0u);
    EXPECT_EQ(warmExt->base.get(), warmBase.get());
    fs::remove_all(dir);
}

TEST(WorkloadCache, SampledExtensionFileNeedsItsBase)
{
    // Loading an extension file without (or with the wrong) base must
    // fail cleanly instead of fabricating a bundle.
    const std::string dir = scratchDir("extbase");
    const auto &spec = graph::datasetByName("cora");
    gcn::PartitionPlan sampled;
    sampled.sampleFanout = 3;
    WorkloadCache cache(dir);
    auto ext = cache.artifacts(spec, graph::ScaleTier::Unit, sampled);
    const auto key = ArtifactKey::of(spec, graph::ScaleTier::Unit, sampled);
    const std::string path =
        (fs::path(dir) / (key.fingerprint() + ".growart")).string();
    ASSERT_TRUE(fs::exists(path));

    EXPECT_EQ(loadArtifacts(path, key, nullptr), nullptr);
    // A base of another dataset is rejected.
    auto otherBase = cache.artifacts(graph::datasetByName("citeseer"),
                                     graph::ScaleTier::Unit, {});
    EXPECT_EQ(loadArtifacts(path, key, otherBase), nullptr);
    // The right base loads.
    auto base = cache.artifacts(spec, graph::ScaleTier::Unit, {});
    EXPECT_NE(loadArtifacts(path, key, base), nullptr);
    fs::remove_all(dir);
}

TEST(WorkloadCache, SampledAndUnsampledPlansGetDistinctArtifacts)
{
    WorkloadCache cache;
    const auto &spec = graph::datasetByName("cora");
    auto plain = cache.artifacts(spec, graph::ScaleTier::Unit, {});
    gcn::PartitionPlan sampled;
    sampled.sampleFanout = 4;
    auto withSample =
        cache.artifacts(spec, graph::ScaleTier::Unit, sampled);
    EXPECT_NE(plain.get(), withSample.get());
    EXPECT_FALSE(plain->hasSampling);
    EXPECT_TRUE(withSample->hasSampling);
    EXPECT_EQ(cache.stats().builds, 2u);

    auto base = ArtifactKey::of(spec, graph::ScaleTier::Unit, {});
    auto keyed = ArtifactKey::of(spec, graph::ScaleTier::Unit, sampled);
    EXPECT_NE(base.fingerprint(), keyed.fingerprint());
    EXPECT_TRUE(base < keyed || keyed < base);
}

TEST(WorkloadCache, FingerprintDistinguishesKeys)
{
    const auto &spec = graph::datasetByName("cora");
    auto base = ArtifactKey::of(spec, graph::ScaleTier::Unit, {});
    auto tiny = ArtifactKey::of(spec, graph::ScaleTier::Tiny, {});
    gcn::PartitionPlan plan;
    plan.targetClusterSize = 99;
    auto sized = ArtifactKey::of(spec, graph::ScaleTier::Unit, plan);
    EXPECT_NE(base.fingerprint(), tiny.fingerprint());
    EXPECT_NE(base.fingerprint(), sized.fingerprint());
    EXPECT_FALSE(base < base);
    EXPECT_TRUE(base < tiny || tiny < base);
}

TEST(WorkloadCache, LruEntryCapEvictsLeastRecentlyUsed)
{
    WorkloadCache cache;
    EXPECT_EQ(cache.memoryEntryCap(), 0u); // unbounded by default
    cache.setMemoryEntryCap(2);
    const auto &cora = graph::datasetByName("cora");
    const auto &cite = graph::datasetByName("citeseer");

    auto a = cache.artifacts(cora, graph::ScaleTier::Unit, {});
    auto b = cache.artifacts(cite, graph::ScaleTier::Unit, {});
    EXPECT_EQ(cache.memoryEntries(), 2u);
    EXPECT_EQ(cache.stats().evictions, 0u);

    // Touch cora so citeseer becomes least recently used, then insert
    // a third key: citeseer must be the one evicted.
    cache.artifacts(cora, graph::ScaleTier::Unit, {});
    gcn::PartitionPlan smaller;
    smaller.targetClusterSize = 128;
    cache.artifacts(cora, graph::ScaleTier::Unit, smaller);
    EXPECT_EQ(cache.memoryEntries(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);

    // cora stayed resident (memory hit); citeseer rebuilds from
    // scratch -- there is no disk layer -- into a fresh instance, while
    // the evicted bundle stays alive through the caller's shared_ptr.
    cache.artifacts(cora, graph::ScaleTier::Unit, {});
    const uint64_t buildsBefore = cache.stats().builds;
    auto b2 = cache.artifacts(cite, graph::ScaleTier::Unit, {});
    EXPECT_EQ(cache.stats().builds, buildsBefore + 1);
    EXPECT_NE(b.get(), b2.get());
    expectArtifactsIdentical(*b, *b2);
}

TEST(WorkloadCache, EvictedKeyReloadsFromDiskInsteadOfRebuilding)
{
    const std::string dir = scratchDir("evict_disk");
    WorkloadCache cache(dir);
    cache.setMemoryEntryCap(1);
    const auto &cora = graph::datasetByName("cora");
    const auto &cite = graph::datasetByName("citeseer");

    auto a = cache.artifacts(cora, graph::ScaleTier::Unit, {});
    cache.artifacts(cite, graph::ScaleTier::Unit, {}); // evicts cora
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.memoryEntries(), 1u);

    // The disk layer is untouched by eviction: cora comes back as a
    // disk load, not a rebuild, and round-trips bit-identically.
    auto a2 = cache.artifacts(cora, graph::ScaleTier::Unit, {});
    EXPECT_EQ(cache.stats().builds, 2u);
    EXPECT_EQ(cache.stats().diskLoads, 1u);
    expectArtifactsIdentical(*a, *a2);
    fs::remove_all(dir);
}

TEST(WorkloadCache, ShrinkingCapEvictsImmediately)
{
    WorkloadCache cache;
    const auto &spec = graph::datasetByName("cora");
    cache.artifacts(spec, graph::ScaleTier::Unit, {});
    gcn::PartitionPlan p1, p2;
    p1.targetClusterSize = 128;
    p2.targetClusterSize = 256;
    cache.artifacts(spec, graph::ScaleTier::Unit, p1);
    auto newest = cache.artifacts(spec, graph::ScaleTier::Unit, p2);
    EXPECT_EQ(cache.memoryEntries(), 3u);

    cache.setMemoryEntryCap(1);
    EXPECT_EQ(cache.memoryEntries(), 1u);
    EXPECT_EQ(cache.stats().evictions, 2u);
    // The survivor is the most recently used key.
    const uint64_t hitsBefore = cache.stats().memoryHits;
    auto again = cache.artifacts(spec, graph::ScaleTier::Unit, p2);
    EXPECT_EQ(cache.stats().memoryHits, hitsBefore + 1);
    EXPECT_EQ(newest.get(), again.get());
}

TEST(WorkloadCache, ByteCapEvictsByFootprintButKeepsNewest)
{
    WorkloadCache cache;
    EXPECT_EQ(cache.memoryByteCap(), 0u); // unbounded by default
    const auto &cora = graph::datasetByName("cora");
    const auto &cite = graph::datasetByName("citeseer");

    auto a = cache.artifacts(cora, graph::ScaleTier::Unit, {});
    const uint64_t oneBundle = cache.memoryBytes();
    EXPECT_EQ(oneBundle, artifactFootprintBytes(*a));
    EXPECT_GT(oneBundle, 0u);

    // Budget below a single bundle: the newest entry is still kept --
    // an over-budget graph must run, it just shares with nothing.
    cache.setMemoryByteCap(oneBundle / 2);
    EXPECT_EQ(cache.memoryEntries(), 1u);
    EXPECT_EQ(cache.stats().evictionsByBytes, 0u);

    // A second key pushes the older one out by bytes.
    auto b = cache.artifacts(cite, graph::ScaleTier::Unit, {});
    EXPECT_EQ(cache.memoryEntries(), 1u);
    EXPECT_EQ(cache.stats().evictionsByBytes, 1u);
    EXPECT_EQ(cache.memoryBytes(), artifactFootprintBytes(*b));

    // A budget that holds both keeps both.
    cache.setMemoryByteCap(4 * oneBundle);
    cache.artifacts(cora, graph::ScaleTier::Unit, {});
    EXPECT_EQ(cache.memoryEntries(), 2u);
    EXPECT_EQ(cache.memoryBytes(),
              artifactFootprintBytes(*a) + artifactFootprintBytes(*b));

    // clearMemory resets the byte accounting.
    cache.clearMemory();
    EXPECT_EQ(cache.memoryBytes(), 0u);
}

TEST(WorkloadCache, FootprintTracksSerializedPayload)
{
    // The footprint mirrors the serialized layout, so it must land
    // close to the artefact file size (same vectors, same prefixes;
    // the file adds only the small key/fingerprint header).
    const std::string dir = scratchDir("footprint");
    const auto &spec = graph::datasetByName("cora");
    WorkloadCache cache(dir);
    auto a = cache.artifacts(spec, graph::ScaleTier::Unit, {});
    const auto key = ArtifactKey::of(spec, graph::ScaleTier::Unit, {});
    const auto fileBytes = fs::file_size(
        fs::path(dir) / (key.fingerprint() + ".growart"));
    const auto footprint = artifactFootprintBytes(*a);
    EXPECT_GT(footprint, 0u);
    EXPECT_LT(footprint, fileBytes);
    EXPECT_GT(footprint, fileBytes - 256);
    fs::remove_all(dir);
}

/** Write spec's unit-tier graph as a .growcsr and register it. */
const graph::DatasetSpec &
registerUnitFile(const std::string &dir, const std::string &source,
                 const std::string &name)
{
    graph::DatasetSpec tmpl = graph::datasetByName(source);
    tmpl.name = name;
    // Synthesize from the *registered* spec (buildDataset resolves the
    // name through the registry); the renamed spec only labels the
    // file. The graph is identical -- synthesis never reads the name.
    auto inst = graph::buildDataset(graph::datasetByName(source),
                                    graph::ScaleTier::Unit);
    const std::string path = dir + "/" + name + ".growcsr";
    fs::create_directories(dir);
    if (!graph::writeCsrFile(path, tmpl, graph::ScaleTier::Unit,
                             inst.graph.view()))
        throw std::runtime_error("writeCsrFile failed");
    return graph::registerFileDataset(path);
}

TEST(WorkloadCache, FileBackedBundleRoundTripsWithoutGraphPayload)
{
    const std::string dir = scratchDir("filebacked");
    const auto &spec =
        registerUnitFile(dir, "cora", "cachetest_cora_file");
    ASSERT_TRUE(spec.isFileBacked());

    WorkloadCache cold(dir + "/cache");
    auto built =
        cold.artifacts(spec, graph::ScaleTier::Unit, {});
    ASSERT_TRUE(built->fileBacked());
    EXPECT_EQ(built->graph().numNodes(), 0u); // graph stays on disk

    // The key carries the file checksum.
    const auto key = ArtifactKey::of(spec, graph::ScaleTier::Unit, {});
    EXPECT_EQ(key.fileChecksum, spec.sourceChecksum);
    EXPECT_NE(key.fingerprint().find("-f"), std::string::npos);

    // The artefact file of a file-backed bundle omits the graph
    // arrays: it must be smaller than the file of the equivalent
    // heap bundle (same graph, same plan) by exactly that payload.
    const auto artBytes = fs::file_size(
        fs::path(dir + "/cache") / (key.fingerprint() + ".growart"));
    auto heapBuilt = gcn::buildGraphArtifacts(
        graph::datasetByName("cora"), graph::ScaleTier::Unit);
    const std::string heapPath = dir + "/heap.growart";
    ASSERT_TRUE(saveArtifacts(heapPath, *heapBuilt));
    const auto graphArrayBytes =
        (heapBuilt->graph().offsets().size() * sizeof(uint64_t)) +
        (heapBuilt->graph().adjacency().size() * sizeof(NodeId));
    EXPECT_LE(artBytes + graphArrayBytes, fs::file_size(heapPath));

    // A warm cache loads the bundle and re-attaches the mapped graph.
    WorkloadCache warm(dir + "/cache");
    auto loaded = warm.artifacts(spec, graph::ScaleTier::Unit, {});
    EXPECT_EQ(warm.stats().builds, 0u);
    EXPECT_EQ(warm.stats().diskLoads, 1u);
    ASSERT_TRUE(loaded->fileBacked());
    EXPECT_EQ(loaded->graphView().numNodes(),
              built->graphView().numNodes());
    EXPECT_EQ(loaded->adjacency().rowPtr(), built->adjacency().rowPtr());
    EXPECT_EQ(loaded->adjacency().values(), built->adjacency().values());
    EXPECT_EQ(loaded->relabel().newToOld, built->relabel().newToOld);

    // Mapped graphs cost no heap: the footprint must be far below an
    // equivalent heap bundle's (which carries the graph arrays).
    auto heap = gcn::buildGraphArtifacts(graph::datasetByName("cora"),
                                         graph::ScaleTier::Unit);
    EXPECT_LT(artifactFootprintBytes(*built),
              artifactFootprintBytes(*heap));
    fs::remove_all(dir);
}

TEST(WorkloadCache, FileBackedBuildMatchesSynthesizedBuild)
{
    // A Table I dataset exported to .growcsr and rebuilt through the
    // file path must produce the exact artefacts of the in-memory
    // build: same adjacency, same partitioning, same HDN lists.
    const std::string dir = scratchDir("filematch");
    const auto &spec =
        registerUnitFile(dir, "citeseer", "cachetest_cite_file");
    auto fromFile = gcn::buildGraphArtifacts(
        spec, graph::ScaleTier::Unit, {}, 4);
    auto synthesized = gcn::buildGraphArtifacts(
        graph::datasetByName("citeseer"), graph::ScaleTier::Unit, {}, 1);
    EXPECT_EQ(fromFile->adjacency().rowPtr(),
              synthesized->adjacency().rowPtr());
    EXPECT_EQ(fromFile->adjacency().colIdx(),
              synthesized->adjacency().colIdx());
    EXPECT_EQ(fromFile->adjacency().values(),
              synthesized->adjacency().values());
    EXPECT_EQ(fromFile->relabel().newToOld,
              synthesized->relabel().newToOld);
    EXPECT_EQ(fromFile->hdnLists(), synthesized->hdnLists());
    EXPECT_EQ(fromFile->adjacencyPartitioned().colIdx(),
              synthesized->adjacencyPartitioned().colIdx());
    fs::remove_all(dir);
}

TEST(WorkloadCache, SnapshotIsCoherentAndCountsReuses)
{
    WorkloadCache cache;
    const auto &cora = graph::datasetByName("cora");
    const auto &citeseer = graph::datasetByName("citeseer");
    cache.workload(cora, unitConfig());
    cache.workload(cora, unitConfig(3)); // same artefacts, new depth
    cache.workload(citeseer, unitConfig());

    const WorkloadCache::Snapshot snap = cache.snapshot();
    EXPECT_EQ(snap.counters.builds, 2u);
    EXPECT_EQ(snap.counters.memoryHits, 1u);
    EXPECT_EQ(snap.reuses(), 1u);
    EXPECT_EQ(snap.entries, 2u);
    EXPECT_GT(snap.bytes, 0u);
    EXPECT_EQ(snap.entryCap, 0u);
    EXPECT_EQ(snap.byteCap, 0u);
}

TEST(WorkloadCache, SnapshotSafeUnderConcurrentLookups)
{
    // Hammer the cache from several threads while snapshotting from
    // another: every snapshot must be internally consistent (tsan/
    // helgrind would flag races; the arithmetic below flags torn
    // counter sets even without them).
    WorkloadCache cache;
    const auto &cora = graph::datasetByName("cora");
    const auto &citeseer = graph::datasetByName("citeseer");
    std::atomic<bool> done{false};
    std::atomic<uint64_t> lookups{0};

    std::vector<std::thread> workers;
    for (int w = 0; w < 3; ++w)
        workers.emplace_back([&, w] {
            for (int i = 0; i < 20; ++i) {
                cache.workload(w % 2 ? cora : citeseer,
                               unitConfig(2 + (i % 3)));
                lookups.fetch_add(1);
            }
        });
    std::thread snapshotter([&] {
        while (!done.load()) {
            const WorkloadCache::Snapshot snap = cache.snapshot();
            // Builds + hits + disk loads can never exceed observed
            // lookups (torn reads would break this invariant), and
            // the footprint only exists alongside entries.
            EXPECT_LE(snap.counters.builds + snap.reuses(),
                      lookups.load() + 3); // in-flight lookups slack
            if (snap.entries == 0)
                EXPECT_EQ(snap.bytes, 0u);
            EXPECT_LE(snap.entries, 2u);
        }
    });
    for (auto &t : workers)
        t.join();
    done.store(true);
    snapshotter.join();

    const WorkloadCache::Snapshot final = cache.snapshot();
    EXPECT_EQ(final.counters.builds, 2u);
    EXPECT_EQ(final.counters.builds + final.counters.memoryHits, 60u);
    EXPECT_EQ(final.entries, 2u);
}

TEST(WorkloadCache, FileBackedBuildRejectsTierMismatch)
{
    const std::string dir = scratchDir("filetier");
    const auto &spec =
        registerUnitFile(dir, "cora", "cachetest_tier_file");
    // The file records unit tier; any other scale= is a config error.
    EXPECT_THROW(gcn::buildGraphArtifacts(spec, graph::ScaleTier::Mini),
                 std::runtime_error);
    fs::remove_all(dir);
}

} // namespace
} // namespace grow::driver
