#include <gtest/gtest.h>

#include "energy/area_model.hpp"

namespace grow::energy {
namespace {

TEST(AreaModel, ReproducesTableFourAt65nm)
{
    // The default configuration must reproduce Table IV's measured
    // 65 nm breakdown (values in mm^2).
    auto a = estimateGrowArea(GrowAreaInputs{}, ProcessNode::Nm65);
    EXPECT_NEAR(a.macArray, 0.613, 1e-6);
    EXPECT_NEAR(a.iBufSparse, 0.319, 1e-6);
    EXPECT_NEAR(a.hdnIdList, 1.112, 1e-6);
    EXPECT_NEAR(a.hdnCache, 3.569, 1e-6);
    EXPECT_NEAR(a.oBufDense, 0.113, 1e-6);
    EXPECT_NEAR(a.others, 0.059, 1e-6);
    EXPECT_NEAR(a.total(), 5.785, 1e-3);
}

TEST(AreaModel, ReproducesTableFourAt40nm)
{
    auto a = estimateGrowArea(GrowAreaInputs{}, ProcessNode::Nm40);
    EXPECT_NEAR(a.total(), 2.191, 1e-3);
}

TEST(AreaModel, PerformancePerAreaClaim)
{
    // Paper: GROW at 40 nm (2.191 mm^2) vs GCNAX (6.51 mm^2) with 2.8x
    // average speedup gives ~8.2x performance/mm^2.
    auto a = estimateGrowArea(GrowAreaInputs{}, ProcessNode::Nm40);
    double perfPerArea = 2.8 * gcnaxReportedAreaMm2() / a.total();
    EXPECT_NEAR(perfPerArea, 8.2, 0.3);
}

TEST(AreaModel, ScalesWithMacCount)
{
    GrowAreaInputs inputs;
    inputs.numMacs = 32;
    auto a = estimateGrowArea(inputs, ProcessNode::Nm65);
    EXPECT_NEAR(a.macArray, 2 * 0.613, 1e-6);
}

TEST(AreaModel, ScalesWithCacheCapacity)
{
    GrowAreaInputs inputs;
    inputs.hdnCacheBytes = 256 * 1024;
    auto a = estimateGrowArea(inputs, ProcessNode::Nm65);
    EXPECT_NEAR(a.hdnCache, 3.569 / 2, 1e-6);
}

TEST(AreaModel, SramDominatesArea)
{
    // Sec. VII-E: 88% of GROW's area is SRAM buffers.
    auto a = estimateGrowArea(GrowAreaInputs{}, ProcessNode::Nm65);
    double sram = a.iBufSparse + a.hdnIdList + a.hdnCache + a.oBufDense;
    EXPECT_GT(sram / a.total(), 0.85);
}

TEST(AreaModel, CamDenserThanSram)
{
    // Per KB, the D-flipflop CAM costs far more area than single-ported
    // SRAM -- the reason the HDN ID list is only 12 KB.
    AreaParams p;
    EXPECT_GT(p.camMm2PerKb, 10 * p.sramSinglePortMm2PerKb);
}

} // namespace
} // namespace grow::energy
