#include <gtest/gtest.h>

#include "energy/energy_model.hpp"

namespace grow::energy {
namespace {

TEST(EnergyModel, SramAccessScalesWithCapacity)
{
    EnergyParams p;
    EXPECT_GT(p.sramAccessPj(512 * 1024), p.sramAccessPj(12 * 1024));
    EXPECT_GT(p.sramAccessPj(12 * 1024), p.sramAccessPj(2 * 1024));
}

TEST(EnergyModel, MacEnergyLinear)
{
    EnergyParams p;
    ActivityCounts a;
    a.macOps = 1000;
    auto e1 = computeEnergy(p, a);
    a.macOps = 2000;
    auto e2 = computeEnergy(p, a);
    EXPECT_DOUBLE_EQ(e2.macPj, 2 * e1.macPj);
    EXPECT_DOUBLE_EQ(e2.rfPj, 2 * e1.rfPj);
}

TEST(EnergyModel, DramDominatesForMemoryBoundPhases)
{
    // The paper's Fig. 22 premise: off-chip movement dominates dynamic
    // energy for SpDeGEMM. One DRAM byte must cost far more than one
    // MAC's worth of on-chip work per byte.
    EnergyParams p;
    ActivityCounts a;
    a.macOps = 1'000'000;
    a.dramBytes = 64'000'000; // 64 B per MAC: memory-bound regime
    a.cycles = 1'000'000;
    a.onChipSramBytes = 538 * 1024;
    auto e = computeEnergy(p, a);
    EXPECT_GT(e.dramPj, e.macPj);
    EXPECT_GT(e.dramPj, e.sramPj);
    EXPECT_GT(e.dramPj, 0.5 * e.total());
}

TEST(EnergyModel, StaticScalesWithTimeAndSram)
{
    EnergyParams p;
    ActivityCounts a;
    a.cycles = 1000;
    a.onChipSramBytes = 512 * 1024;
    auto e1 = computeEnergy(p, a);
    a.cycles = 2000;
    auto e2 = computeEnergy(p, a);
    EXPECT_DOUBLE_EQ(e2.staticPj, 2 * e1.staticPj);

    a.cycles = 1000;
    a.onChipSramBytes = 2 * 512 * 1024;
    auto e3 = computeEnergy(p, a);
    EXPECT_GT(e3.staticPj, e1.staticPj);
}

TEST(EnergyModel, SramCategoriesAccumulate)
{
    EnergyParams p;
    ActivityCounts a;
    a.sram.push_back({512 * 1024, 100, false});
    a.sram.push_back({12 * 1024, 100, false});
    auto e = computeEnergy(p, a);
    double expect = 100 * p.sramAccessPj(512 * 1024) +
                    100 * p.sramAccessPj(12 * 1024);
    EXPECT_NEAR(e.sramPj, expect, 1e-9);
}

TEST(EnergyModel, CamUsesSearchEnergy)
{
    EnergyParams p;
    ActivityCounts a;
    a.sram.push_back({12 * 1024, 1000, true});
    auto e = computeEnergy(p, a);
    EXPECT_NEAR(e.sramPj, 1000 * p.camSearchPjPerKb * 12.0, 1e-9);
}

TEST(EnergyModel, BreakdownAccumulation)
{
    EnergyBreakdown a{1, 2, 3, 4, 5};
    EnergyBreakdown b{10, 20, 30, 40, 50};
    a += b;
    EXPECT_DOUBLE_EQ(a.macPj, 11);
    EXPECT_DOUBLE_EQ(a.staticPj, 55);
    EXPECT_DOUBLE_EQ(a.total(), 11 + 22 + 33 + 44 + 55);
}

TEST(EnergyModel, ZeroActivityZeroEnergy)
{
    EnergyParams p;
    auto e = computeEnergy(p, ActivityCounts{});
    EXPECT_DOUBLE_EQ(e.total(), 0.0);
}

} // namespace
} // namespace grow::energy
