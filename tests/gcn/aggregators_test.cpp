#include <gtest/gtest.h>

#include "gcn/aggregators.hpp"

namespace grow::gcn {
namespace {

TEST(Aggregators, MatrixCoversAllSixFamilies)
{
    EXPECT_EQ(aggregatorSupportMatrix().size(), 6u);
}

TEST(Aggregators, GcnAndGinSupportedAsIs)
{
    EXPECT_TRUE(aggregatorSupport(Aggregator::WeightedSum).supportedAsIs);
    EXPECT_TRUE(aggregatorSupport(Aggregator::Gin).supportedAsIs);
    EXPECT_TRUE(aggregatorSupport(Aggregator::SageMean).supportedAsIs);
    EXPECT_TRUE(aggregatorSupport(Aggregator::SageLstm).supportedAsIs);
}

TEST(Aggregators, PoolAndGatNeedHardware)
{
    const auto &pool = aggregatorSupport(Aggregator::SagePool);
    EXPECT_FALSE(pool.supportedAsIs);
    EXPECT_NEAR(pool.areaOverhead, 0.014, 1e-9); // Sec. VIII: 1.4%
    const auto &gat = aggregatorSupport(Aggregator::GatAttention);
    EXPECT_FALSE(gat.supportedAsIs);
    EXPECT_NEAR(gat.areaOverhead, 0.017, 1e-9); // Sec. VIII: 1.7%
}

TEST(Aggregators, AreaOverheadAppliedToOthers)
{
    auto base = growAreaWithAggregator(Aggregator::WeightedSum);
    auto gat = growAreaWithAggregator(Aggregator::GatAttention);
    EXPECT_NEAR(gat.total(), base.total() * 1.017, base.total() * 0.002);
    // Non-overhead components unchanged.
    EXPECT_DOUBLE_EQ(gat.hdnCache, base.hdnCache);
    EXPECT_DOUBLE_EQ(gat.macArray, base.macArray);
}

TEST(Aggregators, BaselineMatchesTableFour)
{
    auto base = growAreaWithAggregator(Aggregator::SageMean);
    EXPECT_NEAR(base.total(), 5.785, 1e-3);
}

} // namespace
} // namespace grow::gcn
