/**
 * @file
 * The workload-build pipeline must be bit-identical for every thread
 * count: chunk boundaries depend only on the problem size, reductions
 * run in canonical order, and rng-sequential stages stay serial. The
 * CI threads=1-vs-8 diff rides on this guarantee; these tests pin it
 * at the unit level.
 */
#include <gtest/gtest.h>

#include "gcn/workload.hpp"
#include "graph/datasets.hpp"
#include "graph/normalize.hpp"
#include "partition/hdn_select.hpp"
#include "partition/multilevel.hpp"

namespace grow::gcn {
namespace {

void
expectSameCsr(const sparse::CsrMatrix &a, const sparse::CsrMatrix &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.rowPtr(), b.rowPtr());
    ASSERT_EQ(a.colIdx(), b.colIdx());
    // Bit-wise equality, not approximate: the golden lock depends on
    // identical doubles, and vector== on doubles is exactly that.
    ASSERT_EQ(a.values(), b.values());
}

TEST(BuildDeterminism, ArtifactsBitIdenticalAcrossThreadCounts)
{
    const auto &spec = graph::datasetByName("pubmed");
    auto serial =
        buildGraphArtifacts(spec, graph::ScaleTier::Unit, {}, 1);
    for (uint32_t threads : {2u, 8u}) {
        auto parallel = buildGraphArtifacts(
            spec, graph::ScaleTier::Unit, {}, threads);
        ASSERT_EQ(serial->graph().offsets(),
                  parallel->graph().offsets());
        ASSERT_EQ(serial->graph().adjacency(),
                  parallel->graph().adjacency());
        expectSameCsr(serial->adjacency(), parallel->adjacency());
        expectSameCsr(serial->adjacencyPartitioned(),
                      parallel->adjacencyPartitioned());
        ASSERT_EQ(serial->relabel().newToOld,
                  parallel->relabel().newToOld);
        ASSERT_EQ(serial->relabel().clustering.clusterStart,
                  parallel->relabel().clustering.clusterStart);
        ASSERT_EQ(serial->hdnLists(), parallel->hdnLists());
        EXPECT_TRUE(parallel->buildProfile.valid);
        EXPECT_EQ(parallel->buildProfile.threads, threads);
    }
}

TEST(BuildDeterminism, NormalizeBitIdenticalAcrossThreadCounts)
{
    auto inst = graph::buildDataset(graph::datasetByName("reddit"),
                                    graph::ScaleTier::Unit);
    const auto g = inst.graph.view();
    auto serial = graph::normalizedAdjacency(g, true, 1);
    for (uint32_t threads : {2u, 3u, 8u})
        expectSameCsr(serial,
                      graph::normalizedAdjacency(g, true, threads));
}

TEST(BuildDeterminism, PartitionerBitIdenticalAcrossThreadCounts)
{
    auto inst = graph::buildDataset(graph::datasetByName("pokec"),
                                    graph::ScaleTier::Unit);
    const auto g = inst.graph.view();
    partition::PartitionConfig pc;
    pc.numParts = 8;
    pc.seed = 11;
    pc.threads = 1;
    auto serial = partition::MultilevelPartitioner(pc).partition(g);
    for (uint32_t threads : {2u, 8u}) {
        pc.threads = threads;
        auto parallel =
            partition::MultilevelPartitioner(pc).partition(g);
        ASSERT_EQ(serial.assignment, parallel.assignment);
    }
}

TEST(BuildDeterminism, HdnSelectionBitIdenticalAcrossThreadCounts)
{
    auto inst = graph::buildDataset(graph::datasetByName("yelp"),
                                    graph::ScaleTier::Unit);
    const auto g = inst.graph.view();
    partition::PartitionConfig pc;
    pc.numParts = 6;
    auto parts = partition::MultilevelPartitioner(pc).partition(g);
    auto relabel =
        partition::relabelByPartition(g.numNodes(), parts);
    auto serial = partition::selectHdnPerCluster(g, relabel, 16, 1);
    for (uint32_t threads : {2u, 8u})
        ASSERT_EQ(serial, partition::selectHdnPerCluster(g, relabel,
                                                         16, threads));
}

TEST(BuildDeterminism, BuildProfileStampsStages)
{
    auto a = buildGraphArtifacts(graph::datasetByName("cora"),
                                 graph::ScaleTier::Unit, {}, 2);
    const auto &p = a->buildProfile;
    EXPECT_TRUE(p.valid);
    EXPECT_EQ(p.threads, 2u);
    EXPECT_EQ(p.arcs, a->graphView().numArcs());
    EXPECT_GE(p.totalMs, 0.0);
    EXPECT_GE(p.totalMs + 1e-9,
              p.synthMs); // total covers every stage
    EXPECT_GT(p.arcsPerSec(), 0.0);
}

} // namespace
} // namespace grow::gcn
