/**
 * @file
 * Cross-engine end-to-end consistency: the full 2-layer inference flow
 * must hold the same structural invariants for every engine, and the
 * relabeled (partitioned) execution must be equivalent to the original
 * layout up to the row permutation.
 */
#include <gtest/gtest.h>

#include "accel/gamma.hpp"
#include "accel/gcnax.hpp"
#include "accel/matraptor.hpp"
#include "core/grow.hpp"
#include "gcn/runner.hpp"
#include "graph/normalize.hpp"
#include "sparse/convert.hpp"

namespace grow::gcn {
namespace {

const GcnWorkload &
unitWorkload()
{
    static GcnWorkload w = [] {
        WorkloadConfig c;
        c.tier = graph::ScaleTier::Unit;
        c.functionalData = true;
        return buildWorkload(graph::datasetByName("flickr"), c);
    }();
    return w;
}

class EngineSweep : public ::testing::TestWithParam<const char *>
{
  protected:
    std::unique_ptr<accel::AcceleratorSim>
    make()
    {
        std::string name = GetParam();
        if (name == "grow")
            return std::make_unique<core::GrowSim>(core::GrowConfig{});
        if (name == "gcnax")
            return std::make_unique<accel::GcnaxSim>(
                accel::GcnaxConfig{});
        if (name == "matraptor")
            return std::make_unique<accel::MatRaptorSim>(
                accel::MatRaptorConfig{});
        return std::make_unique<accel::GammaSim>(accel::GammaConfig{});
    }
};

TEST_P(EngineSweep, EndToEndFunctionalInference)
{
    auto engine = make();
    RunnerOptions opt;
    opt.sim.functional = true; // runner panics on any mismatch
    EXPECT_NO_THROW(runInference(*engine, unitWorkload(), opt));
}

TEST_P(EngineSweep, MacWorkIdenticalAcrossEngines)
{
    auto engine = make();
    RunnerOptions opt;
    auto r = runInference(*engine, unitWorkload(), opt);
    const auto &w = unitWorkload();
    uint64_t expect =
        w.x(0).nnz() * w.shape().hidden +
        w.adjacency().nnz() * w.shape().hidden +
        w.x(1).nnz() * w.shape().classes +
        w.adjacency().nnz() * w.shape().classes;
    EXPECT_EQ(r.macOps, expect);
}

TEST_P(EngineSweep, EnergyCategoriesAllPopulated)
{
    auto engine = make();
    RunnerOptions opt;
    auto r = runInference(*engine, unitWorkload(), opt);
    EXPECT_GT(r.energy.macPj, 0.0);
    EXPECT_GT(r.energy.dramPj, 0.0);
    EXPECT_GT(r.energy.sramPj, 0.0);
    EXPECT_GT(r.energy.staticPj, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Engines, EngineSweep,
                         ::testing::Values("grow", "gcnax", "matraptor",
                                           "gamma"));

TEST(CrossLayout, PartitionedExecutionIsPermutationEquivalent)
{
    // Running GROW on the relabeled layout must produce the original
    // layout's result with rows permuted by newToOld.
    const auto &w = unitWorkload();
    core::GrowSim sim((core::GrowConfig()));
    accel::SimOptions opt;
    opt.functional = true;

    Rng rng(3);
    auto rhsOrig =
        sparse::randomDense(w.nodes(), w.shape().hidden, rng);
    // Permute RHS rows to the relabeled space.
    sparse::DenseMatrix rhsPart(w.nodes(), w.shape().hidden);
    for (NodeId i = 0; i < w.nodes(); ++i)
        for (uint32_t j = 0; j < w.shape().hidden; ++j)
            rhsPart.at(i, j) = rhsOrig.at(w.relabel().newToOld[i], j);

    accel::SpDeGemmProblem orig;
    orig.lhs = &w.adjacency();
    orig.rhsCols = w.shape().hidden;
    orig.rhs = &rhsOrig;
    auto ro = sim.run(orig, opt);

    accel::SpDeGemmProblem part;
    part.lhs = &w.adjacencyPartitioned();
    part.rhsCols = w.shape().hidden;
    part.rhs = &rhsPart;
    part.clustering = &w.relabel().clustering;
    part.hdnLists = &w.hdnLists();
    auto rp = sim.run(part, opt);

    for (NodeId i = 0; i < w.nodes(); ++i)
        for (uint32_t j = 0; j < w.shape().hidden; ++j)
            ASSERT_NEAR(rp.output.at(i, j),
                        ro.output.at(w.relabel().newToOld[i], j), 1e-9)
                << "row " << i;
}

TEST(CrossLayout, GraphRelabelAgreesWithCsrPermutation)
{
    // graph::Graph::relabeled and CsrMatrix::permutedSymmetric must
    // describe the same structure.
    const auto &w = unitWorkload();
    auto rg = w.graph().relabeled(w.relabel().newToOld);
    auto fromGraph = graph::normalizedAdjacency(rg, true);
    EXPECT_EQ(fromGraph.rowPtr(), w.adjacencyPartitioned().rowPtr());
    EXPECT_EQ(fromGraph.colIdx(), w.adjacencyPartitioned().colIdx());
    for (size_t i = 0; i < fromGraph.values().size(); ++i)
        ASSERT_NEAR(fromGraph.values()[i],
                    w.adjacencyPartitioned().values()[i], 1e-12);
}

} // namespace
} // namespace grow::gcn
