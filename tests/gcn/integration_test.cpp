/**
 * @file
 * Whole-system integration: the paper's headline claims, checked as
 * directional properties at unit scale for every dataset. These are the
 * "does the reproduction behave like the paper says" tests; the bench
 * harness quantifies the same effects at larger scale.
 */
#include <gtest/gtest.h>

#include "accel/gamma.hpp"
#include "accel/gcnax.hpp"
#include "accel/matraptor.hpp"
#include "core/grow.hpp"
#include "gcn/runner.hpp"

namespace grow::gcn {
namespace {

struct WorkloadCache
{
    static const GcnWorkload &
    get(const std::string &name)
    {
        static std::map<std::string, GcnWorkload> cache;
        auto it = cache.find(name);
        if (it == cache.end()) {
            WorkloadConfig c;
            c.tier = graph::ScaleTier::Unit;
            it = cache.emplace(name, buildWorkload(
                                         graph::datasetByName(name), c))
                     .first;
        }
        return it->second;
    }
};

class DatasetSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(DatasetSweep, GrowReducesTrafficVsGcnax)
{
    const auto &w = WorkloadCache::get(GetParam());
    core::GrowSim grow((core::GrowConfig()));
    accel::GcnaxSim gcnax((accel::GcnaxConfig()));
    RunnerOptions gopt;
    gopt.usePartitioning = true;
    RunnerOptions bopt;
    auto rg = runInference(grow, w, gopt);
    auto rb = runInference(gcnax, w, bopt);
    // At unit scale (dense-ish mini graphs) GROW should at minimum be
    // traffic-competitive; on sparse datasets it must win.
    EXPECT_LT(rg.totalTrafficBytes(),
              rb.totalTrafficBytes() * 3 / 2)
        << GetParam();
}

TEST_P(DatasetSweep, AggregationLookupsCoverAllNonZeros)
{
    const auto &w = WorkloadCache::get(GetParam());
    core::GrowSim grow((core::GrowConfig()));
    RunnerOptions opt;
    opt.usePartitioning = true;
    auto r = runInference(grow, w, opt);
    EXPECT_EQ(r.cacheHits + r.cacheMisses, 2 * w.adjacency().nnz());
}

TEST_P(DatasetSweep, EnergyBreakdownComplete)
{
    const auto &w = WorkloadCache::get(GetParam());
    core::GrowSim grow((core::GrowConfig()));
    RunnerOptions opt;
    opt.usePartitioning = true;
    auto r = runInference(grow, w, opt);
    EXPECT_GT(r.energy.total(), 0.0);
    EXPECT_GT(r.energy.dramPj, 0.0);
    EXPECT_GT(r.energy.staticPj, 0.0);
    EXPECT_GT(r.energy.macPj, 0.0);
    EXPECT_GT(r.energy.sramPj, 0.0);
    EXPECT_GT(r.energy.rfPj, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetSweep,
                         ::testing::Values("cora", "citeseer", "pubmed",
                                           "flickr", "reddit", "yelp",
                                           "pokec", "amazon"));

TEST(Integration, PartitioningImprovesHitRateOnCommunityGraphs)
{
    // Unit-scale yelp: strong planted communities.
    const auto &w = WorkloadCache::get("yelp");
    core::GrowSim grow((core::GrowConfig()));
    RunnerOptions with;
    with.usePartitioning = true;
    RunnerOptions without;
    without.usePartitioning = false;
    auto rw = runInference(grow, w, with);
    auto ro = runInference(grow, w, without);
    // At unit scale everything may fit in the cache; partitioning must
    // never hurt by more than a whisker and traffic must not blow up.
    EXPECT_GE(rw.cacheHitRate() + 0.05, ro.cacheHitRate());
}

TEST(Integration, GrowBeatsSparseSparseBaselines)
{
    // Sec. VII-H: MatRaptor (no cache, CSR-RHS tax) and GAMMA (LRU
    // fiber cache) both trail GROW on GCN SpDeGEMM.
    const auto &w = WorkloadCache::get("pokec");
    core::GrowSim grow((core::GrowConfig()));
    accel::MatRaptorSim mat((accel::MatRaptorConfig()));
    accel::GammaSim gam((accel::GammaConfig()));
    RunnerOptions gopt;
    gopt.usePartitioning = true;
    RunnerOptions bopt;
    auto rg = runInference(grow, w, gopt);
    auto rm = runInference(mat, w, bopt);
    auto ra = runInference(gam, w, bopt);
    EXPECT_LT(rg.totalCycles, rm.totalCycles);
    EXPECT_LE(rg.totalCycles, ra.totalCycles);
    EXPECT_LT(rg.totalTrafficBytes(), rm.totalTrafficBytes());
    // And GAMMA beats MatRaptor (its fiber cache captures reuse).
    EXPECT_LT(ra.totalTrafficBytes(), rm.totalTrafficBytes());
}

TEST(Integration, AblationOrderingHolds)
{
    // Fig. 21: baseline (cache only, no runahead) < +runahead <
    // +partitioning, measured in cycles (lower is better).
    const auto &w = WorkloadCache::get("amazon");
    RunnerOptions noPart;
    RunnerOptions part;
    part.usePartitioning = true;

    core::GrowConfig base;
    base.runaheadDegree = 1;
    core::GrowConfig runahead;
    runahead.runaheadDegree = 16;

    core::GrowSim simBase(base);
    core::GrowSim simRunahead(runahead);

    auto r1 = runInference(simBase, w, noPart);
    auto r2 = runInference(simRunahead, w, noPart);
    auto r3 = runInference(simRunahead, w, part);
    EXPECT_LE(r2.totalCycles, r1.totalCycles);
    EXPECT_LE(r3.totalCycles, r2.totalCycles + r2.totalCycles / 10);
}

TEST(Integration, BandwidthSensitivityGcnaxSteeper)
{
    // Fig. 25(b): GCNAX's throughput degrades more steeply than GROW's
    // when bandwidth shrinks 128 -> 32 GB/s.
    const auto &w = WorkloadCache::get("amazon");
    auto slowdown = [&](auto makeSim) {
        auto fast = makeSim(128.0);
        auto slow = makeSim(32.0);
        RunnerOptions opt;
        auto rf = runInference(*fast, w, opt);
        auto rs = runInference(*slow, w, opt);
        return static_cast<double>(rs.totalCycles) /
               static_cast<double>(rf.totalCycles);
    };
    double growSlowdown = slowdown([](double bw) {
        core::GrowConfig c;
        c.dram.bandwidthGBps = bw;
        return std::make_unique<core::GrowSim>(c);
    });
    double gcnaxSlowdown = slowdown([](double bw) {
        accel::GcnaxConfig c;
        c.dram.bandwidthGBps = bw;
        return std::make_unique<accel::GcnaxSim>(c);
    });
    EXPECT_GE(gcnaxSlowdown, growSlowdown * 0.95);
}

} // namespace
} // namespace grow::gcn
