/**
 * @file
 * Model-zoo lowering (Sec. VIII): golden plan shapes per ModelKind,
 * the model=gcn bit-for-bit regression lock against the original
 * 2-SpDeGEMM-per-layer lowering, functional execution of every model,
 * SageMean cross-engine equivalence, the GIN epsilon fold, the GAT
 * area/energy overhead wiring, and the executor's unconsumed-output
 * hardening.
 */
#include <gtest/gtest.h>

#include "accel/gcnax.hpp"
#include "accel/matraptor.hpp"
#include "core/grow.hpp"
#include "gcn/runner.hpp"

namespace grow::gcn {
namespace {

GcnWorkload
unitWorkload(const std::string &name, ModelKind model,
             uint32_t layers = 2, bool functional = false)
{
    WorkloadConfig c;
    c.tier = graph::ScaleTier::Unit;
    c.model = model;
    c.numLayers = layers;
    c.functionalData = functional;
    return buildWorkload(graph::datasetByName(name), c);
}

/** The pre-model-zoo lowering, reproduced verbatim: two SpDeGEMMs per
 *  layer, combination then aggregation. */
PhasePlan
legacyGcnPlan(const GcnWorkload &w, const RunnerOptions &options)
{
    const bool part = options.usePartitioning;
    const bool functional = options.sim.functional;
    const sparse::CsrMatrix &A =
        part ? w.adjacencyPartitioned() : w.adjacency();
    PhasePlan plan;
    for (uint32_t layer = 0; layer < w.numLayers(); ++layer) {
        PlannedPhase comb;
        comb.layer = layer;
        comb.op = PhaseOp::Combination;
        comb.problem.lhs = part ? &w.xPartitioned(layer) : &w.x(layer);
        comb.problem.rhsCols = w.layer(layer).outDim;
        comb.problem.rhs = functional ? &w.weight(layer) : nullptr;
        comb.problem.phase = accel::Phase::Combination;
        comb.problem.rhsOnChip = true;
        plan.push_back(comb);

        PlannedPhase agg;
        agg.layer = layer;
        agg.op = PhaseOp::Aggregation;
        agg.problem.lhs = &A;
        agg.problem.rhsCols = w.layer(layer).outDim;
        agg.problem.phase = accel::Phase::Aggregation;
        if (part) {
            agg.problem.clustering = &w.relabel().clustering;
            agg.problem.hdnLists = &w.hdnLists();
        }
        plan.push_back(agg);
    }
    return plan;
}

void
expectResultsBitIdentical(const InferenceResult &a,
                          const InferenceResult &b)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.combinationCycles, b.combinationCycles);
    EXPECT_EQ(a.aggregationCycles, b.aggregationCycles);
    EXPECT_EQ(a.attentionCycles, b.attentionCycles);
    EXPECT_EQ(a.macOps, b.macOps);
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses);
    for (size_t i = 0; i < mem::kNumTrafficClasses; ++i) {
        EXPECT_EQ(a.traffic.readBytes[i], b.traffic.readBytes[i]);
        EXPECT_EQ(a.traffic.writeBytes[i], b.traffic.writeBytes[i]);
    }
    EXPECT_EQ(a.energy.macPj, b.energy.macPj);
    EXPECT_EQ(a.energy.rfPj, b.energy.rfPj);
    EXPECT_EQ(a.energy.sramPj, b.energy.sramPj);
    EXPECT_EQ(a.energy.dramPj, b.energy.dramPj);
    EXPECT_EQ(a.energy.staticPj, b.energy.staticPj);
    EXPECT_EQ(a.energy.auxPj, b.energy.auxPj);
    ASSERT_EQ(a.phases.size(), b.phases.size());
    for (size_t i = 0; i < a.phases.size(); ++i) {
        EXPECT_EQ(a.phases[i].layer, b.phases[i].layer);
        EXPECT_EQ(a.phases[i].result.cycles, b.phases[i].result.cycles);
    }
}

TEST(ModelZoo, DefaultGcnReproducesLegacyLoweringBitForBit)
{
    // The regression lock of the model-zoo refactor: model=Gcn (the
    // default) must lower to the exact pre-refactor plan and produce a
    // bit-identical InferenceResult.
    auto w = unitWorkload("cora", ModelKind::Gcn);
    RunnerOptions opt;
    opt.usePartitioning = true;

    auto plan = buildPhasePlan(w, opt);
    auto legacy = legacyGcnPlan(w, opt);
    ASSERT_EQ(plan.size(), legacy.size());
    for (size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(plan[i].layer, legacy[i].layer);
        EXPECT_EQ(plan[i].op, legacy[i].op);
        EXPECT_EQ(plan[i].model, ModelKind::Gcn);
        EXPECT_EQ(plan[i].problem.lhs, legacy[i].problem.lhs);
        EXPECT_EQ(plan[i].problem.rhsCols, legacy[i].problem.rhsCols);
        EXPECT_EQ(plan[i].problem.rhsOnChip,
                  legacy[i].problem.rhsOnChip);
        EXPECT_EQ(plan[i].problem.clustering,
                  legacy[i].problem.clustering);
        EXPECT_EQ(plan[i].problem.hdnLists, legacy[i].problem.hdnLists);
    }

    core::GrowSim grow1((core::GrowConfig()));
    core::GrowSim grow2((core::GrowConfig()));
    auto rNew = executePlan(grow1, plan, opt);
    auto rOld = executePlan(grow2, legacy, opt);
    expectResultsBitIdentical(rNew, rOld);
    EXPECT_EQ(rNew.model, ModelKind::Gcn);
    EXPECT_EQ(rNew.modelAreaOverhead, 0.0);
}

TEST(ModelZoo, PlanShapesPerModelKind)
{
    const struct
    {
        ModelKind model;
        std::vector<PhaseOp> layerOps;
    } golden[] = {
        {ModelKind::Gcn,
         {PhaseOp::Combination, PhaseOp::Aggregation}},
        {ModelKind::SageMean,
         {PhaseOp::Combination, PhaseOp::Aggregation}},
        {ModelKind::SagePool,
         {PhaseOp::Combination, PhaseOp::Aggregation}},
        {ModelKind::Gin,
         {PhaseOp::Combination, PhaseOp::Aggregation,
          PhaseOp::Combination}},
        {ModelKind::Gat,
         {PhaseOp::Combination, PhaseOp::AttentionScore,
          PhaseOp::Aggregation}},
    };
    for (const auto &g : golden) {
        auto w = unitWorkload("cora", g.model, 3);
        RunnerOptions opt;
        opt.usePartitioning = true;
        auto plan = buildPhasePlan(w, opt);
        ASSERT_EQ(plan.size(), g.layerOps.size() * w.numLayers())
            << modelKindName(g.model);
        ASSERT_EQ(g.layerOps.size(), modelPhasesPerLayer(g.model));
        for (size_t i = 0; i < plan.size(); ++i) {
            EXPECT_EQ(plan[i].layer, i / g.layerOps.size());
            EXPECT_EQ(plan[i].op, g.layerOps[i % g.layerOps.size()])
                << modelKindName(g.model) << " step " << i;
            EXPECT_EQ(plan[i].model, g.model);
        }
    }
}

TEST(ModelZoo, SageAggregatesOverSampledAdjacency)
{
    auto w = unitWorkload("citeseer", ModelKind::SageMean);
    ASSERT_TRUE(w.hasSampling());
    RunnerOptions opt;
    opt.usePartitioning = true;
    auto plan = buildPhasePlan(w, opt);
    for (const auto &step : plan)
        if (step.op == PhaseOp::Aggregation)
            EXPECT_EQ(step.problem.lhs,
                      &w.adjacencySampledPartitioned());
    // The unpartitioned layout streams the original-labelling sample.
    RunnerOptions flat;
    auto flatPlan = buildPhasePlan(w, flat);
    for (const auto &step : flatPlan)
        if (step.op == PhaseOp::Aggregation)
            EXPECT_EQ(step.problem.lhs, &w.adjacencySampled());
}

TEST(ModelZoo, GatAttentionStreamsAdjacencyWithArtefacts)
{
    auto w = unitWorkload("cora", ModelKind::Gat);
    RunnerOptions opt;
    opt.usePartitioning = true;
    auto plan = buildPhasePlan(w, opt);
    for (const auto &step : plan) {
        if (step.op != PhaseOp::AttentionScore)
            continue;
        EXPECT_EQ(step.problem.lhs, &w.adjacencyPartitioned());
        EXPECT_EQ(step.problem.clustering, &w.relabel().clustering);
        EXPECT_EQ(step.problem.hdnLists, &w.hdnLists());
        EXPECT_FALSE(step.problem.rhsOnChip);
    }
}

TEST(ModelZoo, GinTrailingCombinationUsesMlpOperands)
{
    auto w = unitWorkload("cora", ModelKind::Gin, 2);
    RunnerOptions opt;
    opt.usePartitioning = true;
    auto plan = buildPhasePlan(w, opt);
    ASSERT_EQ(plan.size(), 6u);
    for (uint32_t layer = 0; layer < 2; ++layer) {
        // The aggregation streams GIN's sum operand, not the
        // normalized adjacency.
        EXPECT_EQ(plan[3 * layer + 1].problem.lhs,
                  &w.adjacencyGinPartitioned);
        const auto &mlp = plan[3 * layer + 2];
        EXPECT_EQ(mlp.op, PhaseOp::Combination);
        EXPECT_EQ(mlp.problem.lhs, &w.xMlpPartitioned(layer));
        EXPECT_EQ(mlp.problem.rhsCols, w.layer(layer).outDim);
        // Same-layer combinations stay distinguishable by provenance.
        EXPECT_NE(mlp.problem.label, plan[3 * layer].problem.label);
        // The stand-in for the aggregated output is N x outDim.
        EXPECT_EQ(w.xMlp(layer).cols(), w.layer(layer).outDim);
    }
}

class ModelSweep : public ::testing::TestWithParam<ModelKind>
{
};

TEST_P(ModelSweep, FunctionalInferenceOnGrow)
{
    auto w = unitWorkload("cora", GetParam(), 2, /*functional=*/true);
    core::GrowSim grow((core::GrowConfig()));
    RunnerOptions opt;
    opt.sim.functional = true;
    opt.usePartitioning = true;
    // Every phase is checked against sparse::referenceSpMM inside
    // executePlan; a mismatch (or an unconsumed output) panics.
    InferenceResult r;
    EXPECT_NO_THROW(r = runInference(grow, w, opt));
    EXPECT_EQ(r.phases.size(),
              modelPhasesPerLayer(GetParam()) * w.numLayers());
    EXPECT_EQ(r.model, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Models, ModelSweep,
                         ::testing::ValuesIn(allModelKinds()));

TEST(ModelZoo, SageMeanFunctionallyEquivalentAcrossEngines)
{
    auto w = unitWorkload("citeseer", ModelKind::SageMean, 2,
                          /*functional=*/true);
    RunnerOptions opt;
    opt.sim.functional = true;

    core::GrowSim grow((core::GrowConfig()));
    accel::GcnaxSim gcnax((accel::GcnaxConfig()));
    accel::MatRaptorSim mat((accel::MatRaptorConfig()));
    InferenceResult rg, rx, rm;
    EXPECT_NO_THROW(rg = runInference(grow, w, opt));
    EXPECT_NO_THROW(rx = runInference(gcnax, w, opt));
    EXPECT_NO_THROW(rm = runInference(mat, w, opt));
    // All three engines executed the same sampled-operand plan (each
    // verified per phase against the reference SpMM, so their outputs
    // agree); the MAC work is structural and must match exactly.
    EXPECT_EQ(rg.macOps, rx.macOps);
    EXPECT_EQ(rg.macOps, rm.macOps);
    uint64_t expect = 0;
    for (uint32_t i = 0; i < w.numLayers(); ++i)
        expect += (w.x(i).nnz() + w.adjacencySampled().nnz()) *
                  w.layer(i).outDim;
    EXPECT_EQ(rg.macOps, expect);
}

TEST(ModelZoo, GinEpsilonWeightsTheCentralNode)
{
    // GIN's aggregation operand is the *sum* operand A + (1+eps)I:
    // epsilon must weight exactly the diagonal, leaving neighbour
    // contributions at 1 -- a global W scale would not do (it cancels
    // into a uniform output factor).
    WorkloadConfig cfg;
    cfg.tier = graph::ScaleTier::Unit;
    cfg.model = ModelKind::Gin;
    cfg.functionalData = true;
    cfg.ginEpsilon = 0.5;
    auto w = buildWorkload(graph::datasetByName("cora"), cfg);

    const auto &g = w.graph();
    ASSERT_EQ(w.adjacencyGin.rows(), g.numNodes());
    EXPECT_EQ(w.adjacencyGin.nnz(), g.numArcs() + g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        auto cols = w.adjacencyGin.rowCols(v);
        auto vals = w.adjacencyGin.rowVals(v);
        bool self = false;
        for (size_t i = 0; i < cols.size(); ++i) {
            if (cols[i] == v) {
                self = true;
                EXPECT_DOUBLE_EQ(vals[i], 1.5);
            } else {
                EXPECT_DOUBLE_EQ(vals[i], 1.0);
                EXPECT_TRUE(g.hasEdge(v, cols[i]));
            }
        }
        EXPECT_TRUE(self) << "node " << v;
    }

    // Epsilon never touches the weights: same seed, different eps,
    // identical W (the MLP stages are eps-independent).
    cfg.ginEpsilon = 0.0;
    auto plain = buildWorkload(graph::datasetByName("cora"), cfg);
    EXPECT_DOUBLE_EQ(w.weight(0).at(0, 0), plain.weight(0).at(0, 0));
    EXPECT_DOUBLE_EQ(w.mlpWeight(0).at(0, 0),
                     plain.mlpWeight(0).at(0, 0));
}

TEST(ModelZoo, GatCarriesSecViiiOverheads)
{
    auto w = unitWorkload("cora", ModelKind::Gat);
    core::GrowSim grow((core::GrowConfig()));
    RunnerOptions opt;
    opt.usePartitioning = true;
    auto r = runInference(grow, w, opt);
    EXPECT_EQ(r.model, ModelKind::Gat);
    EXPECT_NEAR(r.modelAreaOverhead, 0.017, 1e-12);
    EXPECT_GT(r.attentionCycles, 0u);
    EXPECT_GT(r.energy.auxPj, 0.0);
    // Exactly the attention-score phases carry the softmax unit's
    // energy, at the documented fraction of their MAC energy.
    for (const auto &ph : r.phases) {
        if (ph.op == PhaseOp::AttentionScore)
            EXPECT_DOUBLE_EQ(ph.energy.auxPj, 0.16 * ph.energy.macPj);
        else
            EXPECT_EQ(ph.energy.auxPj, 0.0);
    }
    EXPECT_EQ(r.totalCycles, r.combinationCycles + r.aggregationCycles +
                                 r.attentionCycles);
}

TEST(ModelZoo, SagePoolCarriesComparatorOverheadOnAggregation)
{
    auto w = unitWorkload("cora", ModelKind::SagePool);
    core::GrowSim grow((core::GrowConfig()));
    RunnerOptions opt;
    opt.usePartitioning = true;
    auto r = runInference(grow, w, opt);
    EXPECT_NEAR(r.modelAreaOverhead, 0.014, 1e-12);
    for (const auto &ph : r.phases) {
        if (ph.op == PhaseOp::Aggregation)
            EXPECT_GT(ph.energy.auxPj, 0.0);
        else
            EXPECT_EQ(ph.energy.auxPj, 0.0);
    }
}

TEST(ModelZoo, ExecutorRejectsPlansLeavingOutputsUnconsumed)
{
    // A truncated GAT plan (combination + attention score, no
    // aggregation) leaves the combination output pending: the
    // end-of-plan hardening must panic rather than drop it silently.
    auto w = unitWorkload("cora", ModelKind::Gat, 1, /*functional=*/true);
    RunnerOptions opt;
    opt.sim.functional = true;
    auto plan = buildPhasePlan(w, opt);
    ASSERT_EQ(plan.size(), 3u);
    plan.pop_back();
    core::GrowSim grow((core::GrowConfig()));
    EXPECT_ANY_THROW(executePlan(grow, plan, opt));
}

TEST(ModelZoo, AggregationWithoutCombinationNamesModelAndLayer)
{
    auto w = unitWorkload("cora", ModelKind::Gcn, 1, /*functional=*/true);
    RunnerOptions opt;
    opt.sim.functional = true;
    auto plan = buildPhasePlan(w, opt);
    ASSERT_EQ(plan.size(), 2u);
    plan.erase(plan.begin()); // orphan the aggregation step
    core::GrowSim grow((core::GrowConfig()));
    try {
        executePlan(grow, plan, opt);
        FAIL() << "orphaned aggregation must panic";
    } catch (const std::exception &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("gcn"), std::string::npos) << msg;
        EXPECT_NE(msg.find("layer 0"), std::string::npos) << msg;
    }
}

} // namespace
} // namespace grow::gcn
