/**
 * @file
 * N-layer model coverage of the phase-plan runner: plans of arbitrary
 * depth lower correctly, execute on GROW and the baselines, and pass
 * per-phase functional verification against sparse::referenceSpMM
 * (runInference panics internally on any mismatch).
 */
#include <gtest/gtest.h>

#include "accel/gcnax.hpp"
#include "accel/matraptor.hpp"
#include "core/grow.hpp"
#include "gcn/runner.hpp"

namespace grow::gcn {
namespace {

GcnWorkload
unitWorkload(const std::string &name, uint32_t layers,
             bool functional = false)
{
    WorkloadConfig c;
    c.tier = graph::ScaleTier::Unit;
    c.numLayers = layers;
    c.functionalData = functional;
    return buildWorkload(graph::datasetByName(name), c);
}

TEST(NLayerRunner, PlanLowersTwoPhasesPerLayer)
{
    for (uint32_t depth : {1u, 2u, 3u, 4u}) {
        auto w = unitWorkload("cora", depth);
        RunnerOptions opt;
        opt.usePartitioning = true;
        auto plan = buildPhasePlan(w, opt);
        ASSERT_EQ(plan.size(), 2u * depth) << "depth " << depth;
        for (uint32_t i = 0; i < plan.size(); ++i) {
            EXPECT_EQ(plan[i].layer, i / 2);
            EXPECT_EQ(plan[i].problem.phase,
                      i % 2 == 0 ? accel::Phase::Combination
                                 : accel::Phase::Aggregation);
            EXPECT_EQ(plan[i].problem.rhsCols, w.layer(i / 2).outDim);
        }
        // Combination LHS is the layer's feature matrix; aggregation
        // LHS is always the (partitioned) adjacency.
        for (uint32_t layer = 0; layer < depth; ++layer) {
            EXPECT_EQ(plan[2 * layer].problem.lhs,
                      &w.xPartitioned(layer));
            EXPECT_EQ(plan[2 * layer + 1].problem.lhs,
                      &w.adjacencyPartitioned());
        }
    }
}

TEST(NLayerRunner, PlanAttachesArtefactsOnlyToAggregation)
{
    auto w = unitWorkload("citeseer", 3);
    RunnerOptions opt;
    opt.usePartitioning = true;
    auto plan = buildPhasePlan(w, opt);
    for (const auto &step : plan) {
        if (step.problem.phase == accel::Phase::Aggregation) {
            EXPECT_EQ(step.problem.clustering,
                      &w.relabel().clustering);
            EXPECT_EQ(step.problem.hdnLists, &w.hdnLists());
        } else {
            EXPECT_EQ(step.problem.clustering, nullptr);
            EXPECT_TRUE(step.problem.rhsOnChip);
        }
    }
}

class DepthSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(DepthSweep, FunctionalOnGrowMatchesReferencePerPhase)
{
    const uint32_t depth = GetParam();
    auto w = unitWorkload("cora", depth, /*functional=*/true);
    core::GrowSim grow((core::GrowConfig()));
    RunnerOptions opt;
    opt.sim.functional = true;
    opt.usePartitioning = true;
    // Each phase output is checked against sparse::referenceSpMM
    // inside executePlan; a mismatch panics.
    InferenceResult r;
    EXPECT_NO_THROW(r = runInference(grow, w, opt));
    ASSERT_EQ(r.phases.size(), 2u * depth);
    for (uint32_t i = 0; i < r.phases.size(); ++i)
        EXPECT_EQ(r.phases[i].layer, i / 2);
}

TEST_P(DepthSweep, FunctionalOnBaselinesMatchesReferencePerPhase)
{
    const uint32_t depth = GetParam();
    auto w = unitWorkload("citeseer", depth, /*functional=*/true);
    RunnerOptions opt;
    opt.sim.functional = true;
    accel::GcnaxSim gcnax((accel::GcnaxConfig()));
    EXPECT_NO_THROW(runInference(gcnax, w, opt));
    accel::MatRaptorSim mat((accel::MatRaptorConfig()));
    EXPECT_NO_THROW(runInference(mat, w, opt));
}

INSTANTIATE_TEST_SUITE_P(Depths, DepthSweep,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(NLayerRunner, MacOpsScaleWithDepth)
{
    auto w = unitWorkload("cora", 3);
    core::GrowSim grow((core::GrowConfig()));
    RunnerOptions opt;
    opt.usePartitioning = true;
    auto r = runInference(grow, w, opt);
    uint64_t expect = 0;
    for (uint32_t i = 0; i < w.numLayers(); ++i) {
        expect += w.x(i).nnz() * w.layer(i).outDim;       // combination
        expect += w.adjacency().nnz() * w.layer(i).outDim;  // aggregation
    }
    EXPECT_EQ(r.macOps, expect);
    EXPECT_EQ(r.cacheHits + r.cacheMisses, 3 * w.adjacency().nnz());
}

TEST(NLayerRunner, ExecutePlanRunsCallerBuiltPlans)
{
    // The plan is data: a caller can lower once and execute on several
    // engines.
    auto w = unitWorkload("pubmed", 2, /*functional=*/true);
    RunnerOptions opt;
    opt.sim.functional = true;
    auto plan = buildPhasePlan(w, opt);
    core::GrowSim grow((core::GrowConfig()));
    accel::GcnaxSim gcnax((accel::GcnaxConfig()));
    auto rg = executePlan(grow, plan, opt);
    auto rb = executePlan(gcnax, plan, opt);
    EXPECT_EQ(rg.phases.size(), plan.size());
    EXPECT_EQ(rb.phases.size(), plan.size());
    EXPECT_EQ(rg.macOps, rb.macOps);
}

} // namespace
} // namespace grow::gcn
