/**
 * @file
 * Phase-parallel plan execution: running the phases of one inference
 * on the worker pool must be bit-identical to the serial loop for
 * every engine, model and thread count -- each phase is hermetic (own
 * cloned engine, own DRAM model), so only the fold order matters and
 * that is fixed to plan order.
 */
#include <gtest/gtest.h>

#include "core/grow.hpp"
#include "driver/engine_factory.hpp"
#include "gcn/runner.hpp"
#include "gcn/workload.hpp"
#include "graph/datasets.hpp"

namespace grow::gcn {
namespace {

GcnWorkload
makeWorkload(ModelKind model, uint32_t layers, bool functional = false)
{
    WorkloadConfig wc;
    wc.tier = graph::ScaleTier::Unit;
    wc.model = model;
    wc.numLayers = layers;
    wc.functionalData = functional;
    return buildWorkload(graph::datasetByName("cora"), wc);
}

/** Full-surface bit-identity of two inference results. */
void
expectBitIdentical(const InferenceResult &a, const InferenceResult &b,
                   const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.engine, b.engine);
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.combinationCycles, b.combinationCycles);
    EXPECT_EQ(a.aggregationCycles, b.aggregationCycles);
    EXPECT_EQ(a.attentionCycles, b.attentionCycles);
    EXPECT_EQ(a.macOps, b.macOps);
    for (size_t i = 0; i < mem::kNumTrafficClasses; ++i) {
        EXPECT_EQ(a.traffic.readBytes[i], b.traffic.readBytes[i]) << i;
        EXPECT_EQ(a.traffic.writeBytes[i], b.traffic.writeBytes[i]) << i;
    }
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses);
    EXPECT_EQ(a.modelAreaOverhead, b.modelAreaOverhead);
    // Energy folds per-phase doubles in plan order: bit-equality, not
    // just closeness.
    EXPECT_EQ(a.energy.macPj, b.energy.macPj);
    EXPECT_EQ(a.energy.rfPj, b.energy.rfPj);
    EXPECT_EQ(a.energy.sramPj, b.energy.sramPj);
    EXPECT_EQ(a.energy.dramPj, b.energy.dramPj);
    EXPECT_EQ(a.energy.staticPj, b.energy.staticPj);
    EXPECT_EQ(a.energy.auxPj, b.energy.auxPj);
    ASSERT_EQ(a.phases.size(), b.phases.size());
    for (size_t i = 0; i < a.phases.size(); ++i) {
        EXPECT_EQ(a.phases[i].layer, b.phases[i].layer) << i;
        EXPECT_EQ(a.phases[i].op, b.phases[i].op) << i;
        EXPECT_EQ(a.phases[i].result.cycles, b.phases[i].result.cycles)
            << i;
        EXPECT_EQ(a.phases[i].result.macOps, b.phases[i].result.macOps)
            << i;
        EXPECT_EQ(a.phases[i].result.label, b.phases[i].result.label)
            << i;
        EXPECT_EQ(a.phases[i].result.traffic.total(),
                  b.phases[i].result.traffic.total())
            << i;
    }
}

InferenceResult
runWith(const std::string &engine_key, const GcnWorkload &w,
        uint32_t threads, Cycle epoch_cycles = 0)
{
    auto spec = driver::engineByKey(engine_key);
    auto engine = spec.make();
    RunnerOptions opt;
    opt.usePartitioning = spec.usePartitioning;
    opt.sim.threads = threads;
    opt.sim.epochCycles = epoch_cycles;
    return runInference(*engine, w, opt);
}

TEST(ParallelPlan, ThreadCountsAreBitIdenticalForEveryEngine)
{
    // The issue's headline contract: threads=1, 2 and 8 produce the
    // same EngineResult bits (cycles, traffic, energy, hit rates).
    auto w = makeWorkload(ModelKind::Gcn, 3);
    for (const char *key : {"grow", "gcnax", "gamma", "matraptor"}) {
        auto r1 = runWith(key, w, 1);
        auto r2 = runWith(key, w, 2);
        auto r8 = runWith(key, w, 8);
        expectBitIdentical(r1, r2, std::string(key) + " threads=2");
        expectBitIdentical(r1, r8, std::string(key) + " threads=8");
    }
}

TEST(ParallelPlan, ModelZooPlansAreBitIdenticalAcrossThreads)
{
    // Multi-phase plans (GAT: 3 phases/layer, GIN: 3 phases/layer)
    // exercise the fan-out with heterogeneous phase shapes.
    for (ModelKind model : {ModelKind::Gat, ModelKind::Gin,
                            ModelKind::SageMean}) {
        auto w = makeWorkload(model, 2);
        auto r1 = runWith("grow", w, 1);
        auto r8 = runWith("grow", w, 8);
        expectBitIdentical(r1, r8,
                           std::string(modelKindName(model)) +
                               " threads=8");
    }
}

TEST(ParallelPlan, EpochModeComposesWithPhaseParallelism)
{
    // threads drives both levels at once (phase fan-out + epoch
    // rounds); the composition must still be thread-count invariant.
    auto w = makeWorkload(ModelKind::Gcn, 2);
    auto r1 = runWith("grow", w, 1, /*epoch_cycles=*/256);
    auto r2 = runWith("grow", w, 2, /*epoch_cycles=*/256);
    auto r8 = runWith("grow", w, 8, /*epoch_cycles=*/256);
    expectBitIdentical(r1, r2, "epoch+threads=2");
    expectBitIdentical(r1, r8, "epoch+threads=8");
}

TEST(ParallelPlan, FunctionalModeStaysSerialAndVerifies)
{
    // Functional runs thread combination outputs between phases, so
    // the executor falls back to the serial loop; requesting threads
    // must not break the verification or the results.
    auto w = makeWorkload(ModelKind::Gcn, 2, /*functional=*/true);
    auto spec = driver::engineByKey("grow");
    auto engine = spec.make();
    RunnerOptions opt;
    opt.usePartitioning = spec.usePartitioning;
    opt.sim.functional = true;
    opt.sim.threads = 8;
    auto r = runInference(*engine, w, opt);
    EXPECT_GT(r.totalCycles, 0u);
    auto serial = runWith("grow", w, 1);
    EXPECT_EQ(r.totalCycles, serial.totalCycles);
}

TEST(ParallelPlan, CloneProducesIdenticalResults)
{
    auto w = makeWorkload(ModelKind::Gcn, 2);
    auto spec = driver::engineByKey("grow");
    auto engine = spec.make();
    auto clone = engine->clone();
    RunnerOptions opt;
    opt.usePartitioning = spec.usePartitioning;
    auto a = runInference(*engine, w, opt);
    auto b = runInference(*clone, w, opt);
    expectBitIdentical(a, b, "clone");
    EXPECT_EQ(engine->name(), clone->name());
}

} // namespace
} // namespace grow::gcn
