/**
 * @file
 * Per-phase traffic classification identities of the inference runner:
 * which traffic classes may appear in which phase, and how phase totals
 * roll up into the inference aggregate.
 */
#include <gtest/gtest.h>

#include "core/grow.hpp"
#include "gcn/runner.hpp"

namespace grow::gcn {
namespace {

InferenceResult
runGrow(const char *dataset, bool partitioned)
{
    WorkloadConfig c;
    c.tier = graph::ScaleTier::Unit;
    auto w = buildWorkload(graph::datasetByName(dataset), c);
    core::GrowSim sim((core::GrowConfig()));
    RunnerOptions opt;
    opt.usePartitioning = partitioned;
    return runInference(sim, w, opt);
}

TEST(PhaseClassification, CombinationHasNoDenseRowFetches)
{
    auto r = runGrow("cora", true);
    for (const auto &ph : r.phases) {
        if (ph.result.phase == accel::Phase::Combination) {
            EXPECT_EQ(ph.result.traffic.readBytes[static_cast<size_t>(
                          mem::TrafficClass::DenseRow)],
                      0u);
        }
    }
}

TEST(PhaseClassification, EveryPhaseWritesItsOutput)
{
    auto r = runGrow("citeseer", true);
    for (const auto &ph : r.phases)
        EXPECT_GT(ph.result.traffic.writeBytes[static_cast<size_t>(
                      mem::TrafficClass::OutputWrite)],
                  0u);
}

TEST(PhaseClassification, EveryPhaseStreamsItsLhs)
{
    auto r = runGrow("pubmed", true);
    for (const auto &ph : r.phases)
        EXPECT_GT(ph.result.traffic.readBytes[static_cast<size_t>(
                      mem::TrafficClass::SparseStream)],
                  0u);
}

TEST(PhaseClassification, TrafficRollsUpExactly)
{
    auto r = runGrow("flickr", true);
    mem::DramTraffic sum;
    for (const auto &ph : r.phases) {
        for (size_t i = 0; i < mem::kNumTrafficClasses; ++i) {
            sum.readBytes[i] += ph.result.traffic.readBytes[i];
            sum.writeBytes[i] += ph.result.traffic.writeBytes[i];
        }
    }
    for (size_t i = 0; i < mem::kNumTrafficClasses; ++i) {
        EXPECT_EQ(sum.readBytes[i], r.traffic.readBytes[i]);
        EXPECT_EQ(sum.writeBytes[i], r.traffic.writeBytes[i]);
    }
}

TEST(PhaseClassification, PartitionedRunsPreloadPerCluster)
{
    auto part = runGrow("yelp", true);
    auto flat = runGrow("yelp", false);
    // With partitioning, every cluster reloads the HDN cache; without,
    // there is a single global preload per aggregation phase (plus the
    // W preloads of combination). Partitioned preload traffic is
    // therefore at least the unpartitioned amount.
    auto preload = [](const InferenceResult &r) {
        return r.traffic.readBytes[static_cast<size_t>(
            mem::TrafficClass::HdnPreload)];
    };
    EXPECT_GE(preload(part), preload(flat));
}

TEST(PhaseClassification, AggregationLayersShareAdjacencyStream)
{
    auto r = runGrow("cora", true);
    // Both aggregation phases stream the same adjacency matrix: their
    // sparse-stream bytes must be equal.
    Bytes agg0 = 0, agg1 = 0;
    for (const auto &ph : r.phases) {
        if (ph.result.phase != accel::Phase::Aggregation)
            continue;
        Bytes b = ph.result.traffic.readBytes[static_cast<size_t>(
            mem::TrafficClass::SparseStream)];
        if (ph.layer == 0)
            agg0 = b;
        else
            agg1 = b;
    }
    EXPECT_EQ(agg0, agg1);
}

} // namespace
} // namespace grow::gcn
