#include <gtest/gtest.h>

#include "accel/gcnax.hpp"
#include "core/grow.hpp"
#include "gcn/runner.hpp"

namespace grow::gcn {
namespace {

GcnWorkload
unitWorkload(const std::string &name, bool functional = false)
{
    WorkloadConfig c;
    c.tier = graph::ScaleTier::Unit;
    c.functionalData = functional;
    return buildWorkload(graph::datasetByName(name), c);
}

TEST(Runner, FourPhasesPerInference)
{
    auto w = unitWorkload("cora");
    core::GrowSim grow((core::GrowConfig()));
    RunnerOptions opt;
    opt.usePartitioning = true;
    auto r = runInference(grow, w, opt);
    ASSERT_EQ(r.phases.size(), 4u);
    EXPECT_EQ(r.phases[0].result.phase, accel::Phase::Combination);
    EXPECT_EQ(r.phases[1].result.phase, accel::Phase::Aggregation);
    EXPECT_EQ(r.phases[2].result.phase, accel::Phase::Combination);
    EXPECT_EQ(r.phases[3].result.phase, accel::Phase::Aggregation);
}

TEST(Runner, CycleAccountingConsistent)
{
    auto w = unitWorkload("citeseer");
    core::GrowSim grow((core::GrowConfig()));
    RunnerOptions opt;
    opt.usePartitioning = true;
    auto r = runInference(grow, w, opt);
    Cycle sum = 0;
    for (const auto &ph : r.phases)
        sum += ph.result.cycles;
    EXPECT_EQ(r.totalCycles, sum);
    EXPECT_EQ(r.totalCycles,
              r.combinationCycles + r.aggregationCycles);
}

TEST(Runner, EnergyAggregationConsistent)
{
    auto w = unitWorkload("cora");
    core::GrowSim grow((core::GrowConfig()));
    RunnerOptions opt;
    opt.usePartitioning = true;
    auto r = runInference(grow, w, opt);
    double sum = 0;
    for (const auto &ph : r.phases)
        sum += ph.energy.total();
    EXPECT_NEAR(r.energy.total(), sum, 1e-6);
    EXPECT_GT(r.energy.dramPj, 0.0);
    EXPECT_GT(r.energy.macPj, 0.0);
    EXPECT_GT(r.energy.staticPj, 0.0);
}

TEST(Runner, FunctionalVerificationPasses)
{
    auto w = unitWorkload("cora", true);
    core::GrowSim grow((core::GrowConfig()));
    RunnerOptions opt;
    opt.sim.functional = true;
    opt.usePartitioning = true;
    // runInference panics internally on any functional mismatch.
    EXPECT_NO_THROW(runInference(grow, w, opt));
}

TEST(Runner, FunctionalVerificationAcrossEnginesAndLayouts)
{
    auto w = unitWorkload("pubmed", true);
    RunnerOptions part;
    part.sim.functional = true;
    part.usePartitioning = true;
    RunnerOptions orig;
    orig.sim.functional = true;
    orig.usePartitioning = false;

    core::GrowSim grow((core::GrowConfig()));
    EXPECT_NO_THROW(runInference(grow, w, part));
    EXPECT_NO_THROW(runInference(grow, w, orig));
    accel::GcnaxSim gcnax((accel::GcnaxConfig()));
    EXPECT_NO_THROW(runInference(gcnax, w, orig));
}

TEST(Runner, PartitioningRequiredWhenRequested)
{
    WorkloadConfig c;
    c.tier = graph::ScaleTier::Unit;
    c.buildPartitioning = false;
    auto w = buildWorkload(graph::datasetByName("cora"), c);
    core::GrowSim grow((core::GrowConfig()));
    RunnerOptions opt;
    opt.usePartitioning = true;
    EXPECT_ANY_THROW(runInference(grow, w, opt));
}

TEST(Runner, CacheStatsOnlyFromAggregation)
{
    auto w = unitWorkload("cora");
    core::GrowSim grow((core::GrowConfig()));
    RunnerOptions opt;
    opt.usePartitioning = true;
    auto r = runInference(grow, w, opt);
    uint64_t aggLookups = 0;
    for (const auto &ph : r.phases)
        if (ph.result.phase == accel::Phase::Aggregation)
            aggLookups += ph.result.cacheHits + ph.result.cacheMisses;
    EXPECT_EQ(r.cacheHits + r.cacheMisses, aggLookups);
    // Each aggregation phase looks up once per adjacency non-zero.
    EXPECT_EQ(aggLookups, 2 * w.adjacency().nnz());
}

TEST(Runner, MacOpsMatchWorkloadStructure)
{
    auto w = unitWorkload("citeseer");
    core::GrowSim grow((core::GrowConfig()));
    RunnerOptions opt;
    opt.usePartitioning = true;
    auto r = runInference(grow, w, opt);
    uint64_t expect =
        w.x(0).nnz() * w.shape().hidden +       // comb layer 0
        w.adjacency().nnz() * w.shape().hidden + // agg layer 0
        w.x(1).nnz() * w.shape().classes +      // comb layer 1
        w.adjacency().nnz() * w.shape().classes; // agg layer 1
    EXPECT_EQ(r.macOps, expect);
}

} // namespace
} // namespace grow::gcn
