#include <gtest/gtest.h>

#include "gcn/workload.hpp"
#include "sparse/convert.hpp"
#include "util/random.hpp"

namespace grow::gcn {
namespace {

WorkloadConfig
unitConfig(bool functional = false)
{
    WorkloadConfig c;
    c.tier = graph::ScaleTier::Unit;
    c.functionalData = functional;
    return c;
}

TEST(Workload, BuildsAllArtefacts)
{
    auto w = buildWorkload(graph::datasetByName("cora"), unitConfig());
    EXPECT_GT(w.nodes(), 0u);
    EXPECT_TRUE(w.hasPartitioning);
    EXPECT_EQ(w.adjacency.rows(), w.nodes());
    EXPECT_EQ(w.adjacencyPartitioned.rows(), w.nodes());
    EXPECT_EQ(w.x0.rows(), w.nodes());
    EXPECT_EQ(w.x0.cols(), w.shape.inFeatures);
    EXPECT_EQ(w.x1.cols(), w.shape.hidden);
    EXPECT_EQ(w.hdnLists.size(),
              w.relabel.clustering.numClusters());
}

TEST(Workload, FeatureDensitiesMatchTableOne)
{
    auto spec = graph::datasetByName("pubmed"); // x0 10%, x1 77.6%
    auto w = buildWorkload(spec, unitConfig());
    EXPECT_NEAR(w.x0.density(), spec.x0Density, 0.02);
    EXPECT_NEAR(w.x1.density(), spec.x1Density, 0.05);
}

TEST(Workload, PartitionedAdjacencyIsPermutation)
{
    auto w = buildWorkload(graph::datasetByName("citeseer"),
                           unitConfig());
    EXPECT_EQ(w.adjacencyPartitioned.nnz(), w.adjacency.nnz());
    // Value multisets agree.
    auto a = w.adjacency.values();
    auto b = w.adjacencyPartitioned.values();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Workload, PermuteRowsConsistentWithRelabel)
{
    auto w = buildWorkload(graph::datasetByName("cora"), unitConfig());
    // Row i of x0Partitioned equals row newToOld[i] of x0.
    for (NodeId i = 0; i < std::min(w.nodes(), 50u); ++i) {
        auto pc = w.x0Partitioned.rowCols(i);
        auto oc = w.x0.rowCols(w.relabel.newToOld[i]);
        ASSERT_EQ(pc.size(), oc.size());
        for (size_t j = 0; j < pc.size(); ++j)
            EXPECT_EQ(pc[j], oc[j]);
    }
}

TEST(Workload, FunctionalDataOnlyOnRequest)
{
    auto w1 = buildWorkload(graph::datasetByName("cora"), unitConfig());
    EXPECT_FALSE(w1.w0.has_value());
    auto w2 =
        buildWorkload(graph::datasetByName("cora"), unitConfig(true));
    ASSERT_TRUE(w2.w0.has_value());
    EXPECT_EQ(w2.w0->rows(), w2.shape.inFeatures);
    EXPECT_EQ(w2.w0->cols(), w2.shape.hidden);
    EXPECT_EQ(w2.w1->rows(), w2.shape.hidden);
    EXPECT_EQ(w2.w1->cols(), w2.shape.classes);
}

TEST(Workload, DeterministicForSeed)
{
    auto a = buildWorkload(graph::datasetByName("cora"), unitConfig());
    auto b = buildWorkload(graph::datasetByName("cora"), unitConfig());
    EXPECT_EQ(a.adjacency.colIdx(), b.adjacency.colIdx());
    EXPECT_EQ(a.x0.colIdx(), b.x0.colIdx());
    EXPECT_EQ(a.relabel.newToOld, b.relabel.newToOld);
}

TEST(Workload, NoPartitioningOnRequest)
{
    WorkloadConfig c = unitConfig();
    c.buildPartitioning = false;
    auto w = buildWorkload(graph::datasetByName("cora"), c);
    EXPECT_FALSE(w.hasPartitioning);
    EXPECT_EQ(w.adjacencyPartitioned.rows(), 0u);
}

TEST(Workload, HdnListsWithinClusterBounds)
{
    auto w = buildWorkload(graph::datasetByName("flickr"), unitConfig());
    const auto &clustering = w.relabel.clustering;
    for (uint32_t c = 0; c < clustering.numClusters(); ++c) {
        for (NodeId v : w.hdnLists[c]) {
            EXPECT_GE(v, clustering.clusterStart[c]);
            EXPECT_LT(v, clustering.clusterStart[c + 1]);
        }
    }
}

TEST(PermuteRows, SimpleExample)
{
    Rng rng(3);
    auto m = sparse::randomCsr(4, 6, 0.5, rng);
    auto p = permuteRows(m, {3, 2, 1, 0});
    EXPECT_EQ(p.nnz(), m.nnz());
    for (NodeId i = 0; i < 4; ++i) {
        auto a = p.rowCols(i);
        auto b = m.rowCols(3 - i);
        ASSERT_EQ(a.size(), b.size());
        for (size_t j = 0; j < a.size(); ++j)
            EXPECT_EQ(a[j], b[j]);
    }
}

} // namespace
} // namespace grow::gcn
