#include <gtest/gtest.h>

#include "gcn/workload.hpp"
#include "sparse/convert.hpp"
#include "util/random.hpp"

namespace grow::gcn {
namespace {

WorkloadConfig
unitConfig(bool functional = false)
{
    WorkloadConfig c;
    c.tier = graph::ScaleTier::Unit;
    c.functionalData = functional;
    return c;
}

TEST(Workload, BuildsAllArtefacts)
{
    auto w = buildWorkload(graph::datasetByName("cora"), unitConfig());
    EXPECT_GT(w.nodes(), 0u);
    EXPECT_TRUE(w.hasPartitioning());
    EXPECT_EQ(w.adjacency().rows(), w.nodes());
    EXPECT_EQ(w.adjacencyPartitioned().rows(), w.nodes());
    ASSERT_EQ(w.numLayers(), 2u);
    EXPECT_EQ(w.x(0).rows(), w.nodes());
    EXPECT_EQ(w.x(0).cols(), w.shape().inFeatures);
    EXPECT_EQ(w.x(1).cols(), w.shape().hidden);
    EXPECT_EQ(w.hdnLists().size(),
              w.relabel().clustering.numClusters());
}

TEST(Workload, FeatureDensitiesMatchTableOne)
{
    auto spec = graph::datasetByName("pubmed"); // x0 10%, x1 77.6%
    auto w = buildWorkload(spec, unitConfig());
    EXPECT_NEAR(w.x(0).density(), spec.x0Density, 0.02);
    EXPECT_NEAR(w.x(1).density(), spec.x1Density, 0.05);
}

TEST(Workload, LayerDimsChainAcrossDepths)
{
    graph::GcnShape shape;
    shape.inFeatures = 500;
    shape.hidden = 16;
    shape.classes = 3;
    EXPECT_EQ(layerDims(shape, 1), (std::vector<uint32_t>{500, 3}));
    EXPECT_EQ(layerDims(shape, 2), (std::vector<uint32_t>{500, 16, 3}));
    EXPECT_EQ(layerDims(shape, 4),
              (std::vector<uint32_t>{500, 16, 16, 16, 3}));
}

TEST(Workload, DeepModelBuildsPerLayerArtefacts)
{
    WorkloadConfig c = unitConfig(true);
    c.numLayers = 3;
    auto w = buildWorkload(graph::datasetByName("cora"), c);
    ASSERT_EQ(w.numLayers(), 3u);
    ASSERT_EQ(w.features.size(), 3u);
    ASSERT_EQ(w.featuresPartitioned.size(), 3u);
    ASSERT_EQ(w.weights.size(), 3u);
    for (uint32_t i = 0; i < 3; ++i) {
        EXPECT_EQ(w.x(i).rows(), w.nodes());
        EXPECT_EQ(w.x(i).cols(), w.layer(i).inDim);
        EXPECT_EQ(w.xPartitioned(i).cols(), w.layer(i).inDim);
        EXPECT_EQ(w.weight(i).rows(), w.layer(i).inDim);
        EXPECT_EQ(w.weight(i).cols(), w.layer(i).outDim);
        if (i > 0)
            EXPECT_EQ(w.layer(i).inDim, w.layer(i - 1).outDim);
    }
    EXPECT_EQ(w.layer(0).inDim, w.shape().inFeatures);
    EXPECT_EQ(w.layer(1).inDim, w.shape().hidden);
    EXPECT_EQ(w.layer(2).outDim, w.shape().classes);
    // Deep X(i) substitutes reuse the published post-layer-1 density.
    EXPECT_DOUBLE_EQ(w.layer(2).xDensity, w.spec()->x1Density);
}

TEST(Workload, SingleLayerModelMapsInputToClasses)
{
    WorkloadConfig c = unitConfig();
    c.numLayers = 1;
    auto w = buildWorkload(graph::datasetByName("citeseer"), c);
    ASSERT_EQ(w.numLayers(), 1u);
    EXPECT_EQ(w.layer(0).inDim, w.shape().inFeatures);
    EXPECT_EQ(w.layer(0).outDim, w.shape().classes);
}

TEST(Workload, PartitionedAdjacencyIsPermutation)
{
    auto w = buildWorkload(graph::datasetByName("citeseer"),
                           unitConfig());
    EXPECT_EQ(w.adjacencyPartitioned().nnz(), w.adjacency().nnz());
    // Value multisets agree.
    auto a = w.adjacency().values();
    auto b = w.adjacencyPartitioned().values();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Workload, PermuteRowsConsistentWithRelabel)
{
    auto w = buildWorkload(graph::datasetByName("cora"), unitConfig());
    // Row i of xPartitioned(0) equals row newToOld[i] of x(0).
    for (NodeId i = 0; i < std::min(w.nodes(), 50u); ++i) {
        auto pc = w.xPartitioned(0).rowCols(i);
        auto oc = w.x(0).rowCols(w.relabel().newToOld[i]);
        ASSERT_EQ(pc.size(), oc.size());
        for (size_t j = 0; j < pc.size(); ++j)
            EXPECT_EQ(pc[j], oc[j]);
    }
}

TEST(Workload, FunctionalDataOnlyOnRequest)
{
    auto w1 = buildWorkload(graph::datasetByName("cora"), unitConfig());
    EXPECT_FALSE(w1.hasFunctionalData());
    auto w2 =
        buildWorkload(graph::datasetByName("cora"), unitConfig(true));
    ASSERT_TRUE(w2.hasFunctionalData());
    ASSERT_EQ(w2.weights.size(), 2u);
    EXPECT_EQ(w2.weight(0).rows(), w2.shape().inFeatures);
    EXPECT_EQ(w2.weight(0).cols(), w2.shape().hidden);
    EXPECT_EQ(w2.weight(1).rows(), w2.shape().hidden);
    EXPECT_EQ(w2.weight(1).cols(), w2.shape().classes);
}

TEST(Workload, DeterministicForSeed)
{
    auto a = buildWorkload(graph::datasetByName("cora"), unitConfig());
    auto b = buildWorkload(graph::datasetByName("cora"), unitConfig());
    EXPECT_EQ(a.adjacency().colIdx(), b.adjacency().colIdx());
    EXPECT_EQ(a.x(0).colIdx(), b.x(0).colIdx());
    EXPECT_EQ(a.relabel().newToOld, b.relabel().newToOld);
}

TEST(Workload, NoPartitioningOnRequest)
{
    WorkloadConfig c = unitConfig();
    c.buildPartitioning = false;
    auto w = buildWorkload(graph::datasetByName("cora"), c);
    EXPECT_FALSE(w.hasPartitioning());
    EXPECT_EQ(w.adjacencyPartitioned().rows(), 0u);
}

TEST(Workload, ClusterSizeNeverExceedsTarget)
{
    // Regression: numParts used floor division (n / clusterSize), so
    // n=800 at target 600 yielded ONE 800-row cluster -- overshooting
    // the HDN cache the target was sized against by 33%. Ceiling
    // division plus the hard split bound must cap every cluster.
    WorkloadConfig c = unitConfig();
    c.targetClusterSize = 600; // unit-tier cora has 800 nodes
    auto w = buildWorkload(graph::datasetByName("cora"), c);
    ASSERT_EQ(w.nodes(), 800u);
    const auto &clustering = w.relabel().clustering;
    EXPECT_GE(clustering.numClusters(), 2u);
    for (uint32_t cl = 0; cl < clustering.numClusters(); ++cl)
        EXPECT_LE(clustering.clusterSize(cl), 600u)
            << "cluster " << cl << " overshoots the cache target";
    EXPECT_EQ(w.artifacts->maxClusterNodes, 600u);
}

TEST(Workload, ClusterBoundHoldsAcrossTargets)
{
    for (uint32_t target : {64u, 100u, 299u, 750u}) {
        WorkloadConfig c = unitConfig();
        c.targetClusterSize = target;
        auto w = buildWorkload(graph::datasetByName("flickr"), c);
        const auto &clustering = w.relabel().clustering;
        uint32_t covered = 0;
        for (uint32_t cl = 0; cl < clustering.numClusters(); ++cl) {
            EXPECT_LE(clustering.clusterSize(cl), target);
            covered += clustering.clusterSize(cl);
        }
        // The split only adds boundaries: every node stays covered.
        EXPECT_EQ(covered, w.nodes());
    }
}

TEST(Workload, ArtifactsSharedAcrossDepths)
{
    auto artifacts = buildGraphArtifacts(graph::datasetByName("cora"),
                                         graph::ScaleTier::Unit);
    WorkloadConfig c2 = unitConfig();
    WorkloadConfig c4 = unitConfig();
    c4.numLayers = 4;
    auto w2 = buildLayerData(artifacts, c2);
    auto w4 = buildLayerData(artifacts, c4);
    // Same immutable bundle, not copies.
    EXPECT_EQ(w2.artifacts.get(), artifacts.get());
    EXPECT_EQ(w4.artifacts.get(), artifacts.get());
    EXPECT_EQ(&w2.adjacency(), &w4.adjacency());
    // Depth-dependent data stays per-workload.
    EXPECT_EQ(w2.features.size(), 2u);
    EXPECT_EQ(w4.features.size(), 4u);
}

TEST(Workload, SplitBuildMatchesOneShotBuild)
{
    WorkloadConfig c = unitConfig(true);
    c.numLayers = 3;
    auto oneShot = buildWorkload(graph::datasetByName("pubmed"), c);
    auto artifacts = buildGraphArtifacts(graph::datasetByName("pubmed"),
                                         c.tier, c.partitionPlan());
    auto split = buildLayerData(artifacts, c);
    EXPECT_EQ(oneShot.adjacency().colIdx(), split.adjacency().colIdx());
    EXPECT_EQ(oneShot.relabel().newToOld, split.relabel().newToOld);
    EXPECT_EQ(oneShot.hdnLists(), split.hdnLists());
    ASSERT_EQ(oneShot.features.size(), split.features.size());
    for (size_t i = 0; i < oneShot.features.size(); ++i) {
        EXPECT_EQ(oneShot.features[i].colIdx(), split.features[i].colIdx());
        EXPECT_EQ(oneShot.features[i].values(), split.features[i].values());
    }
    ASSERT_EQ(oneShot.weights.size(), split.weights.size());
}

TEST(Workload, LayerDataRejectsMismatchedArtifacts)
{
    auto artifacts = buildGraphArtifacts(graph::datasetByName("cora"),
                                         graph::ScaleTier::Unit);
    WorkloadConfig wrongTier = unitConfig();
    wrongTier.tier = graph::ScaleTier::Tiny;
    EXPECT_ANY_THROW(buildLayerData(artifacts, wrongTier));
    WorkloadConfig wrongPart = unitConfig();
    wrongPart.buildPartitioning = false;
    EXPECT_ANY_THROW(buildLayerData(artifacts, wrongPart));
    EXPECT_ANY_THROW(buildLayerData(nullptr, unitConfig()));
}

TEST(Workload, HdnListsWithinClusterBounds)
{
    auto w = buildWorkload(graph::datasetByName("flickr"), unitConfig());
    const auto &clustering = w.relabel().clustering;
    for (uint32_t c = 0; c < clustering.numClusters(); ++c) {
        for (NodeId v : w.hdnLists()[c]) {
            EXPECT_GE(v, clustering.clusterStart[c]);
            EXPECT_LT(v, clustering.clusterStart[c + 1]);
        }
    }
}

TEST(PermuteRows, SimpleExample)
{
    Rng rng(3);
    auto m = sparse::randomCsr(4, 6, 0.5, rng);
    auto p = permuteRows(m, {3, 2, 1, 0});
    EXPECT_EQ(p.nnz(), m.nnz());
    for (NodeId i = 0; i < 4; ++i) {
        auto a = p.rowCols(i);
        auto b = m.rowCols(3 - i);
        ASSERT_EQ(a.size(), b.size());
        for (size_t j = 0; j < a.size(); ++j)
            EXPECT_EQ(a[j], b[j]);
    }
}

} // namespace
} // namespace grow::gcn
