/**
 * @file
 * Property sweeps of the DC-SBM generator: the planted intra-community
 * fraction and degree tail must track the requested parameters across
 * the parameter space the dataset registry uses.
 */
#include <gtest/gtest.h>

#include "graph/degree_stats.hpp"
#include "graph/generators.hpp"
#include "partition/metrics.hpp"

namespace grow::graph {
namespace {

class IntraFractionSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(IntraFractionSweep, PlantedLocalityTracksRequest)
{
    double requested = GetParam();
    DcSbmParams p;
    p.nodes = 4000;
    p.avgDegree = 14.0;
    p.communities = 8;
    p.intraFraction = requested;
    p.seed = 42;
    std::vector<uint32_t> comm;
    auto g = generateDcSbm(p, comm);

    partition::PartitionResult planted;
    planted.numParts = 8;
    planted.assignment = comm;
    double measured =
        partition::evaluatePartition(g, planted).intraArcFraction;
    // Chance level is 1/8; dedup within dense communities trims the
    // intra share, so allow a generous but directional band.
    double chance = 1.0 / 8.0;
    double expected = requested + (1.0 - requested) * chance;
    EXPECT_NEAR(measured, expected, 0.12) << "requested " << requested;
}

INSTANTIATE_TEST_SUITE_P(Fractions, IntraFractionSweep,
                         ::testing::Values(0.0, 0.4, 0.6, 0.8, 0.95));

class AlphaSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(AlphaSweep, HeavierTailsForSmallerAlpha)
{
    double alpha = GetParam();
    auto g = generateChungLu(15000, 12.0, alpha, 5);
    double gini = degreeGini(g);
    // Heavier tail (smaller alpha) concentrates degree: the Gini
    // coefficient should decrease as alpha grows.
    static double prevGini = 1.1;
    EXPECT_LT(gini, prevGini + 0.05) << "alpha " << alpha;
    prevGini = gini;
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweep,
                         ::testing::Values(1.9, 2.2, 2.6, 3.2));

class ScaleSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(ScaleSweep, GeneratorScalesLinearly)
{
    uint32_t nodes = GetParam();
    DcSbmParams p;
    p.nodes = nodes;
    p.avgDegree = 10.0;
    p.communities = std::max(2u, nodes / 700);
    p.seed = 9;
    auto g = generateDcSbm(p);
    EXPECT_EQ(g.numNodes(), nodes);
    EXPECT_NEAR(g.avgDegree(), 10.0, 3.0);
    EXPECT_TRUE(g.validate());
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScaleSweep,
                         ::testing::Values(128u, 1024u, 5000u, 20000u));

} // namespace
} // namespace grow::graph
