#include <gtest/gtest.h>

#include "graph/datasets.hpp"

namespace grow::graph {
namespace {

TEST(Datasets, AllEightPresent)
{
    const auto &all = allDatasets();
    ASSERT_EQ(all.size(), 8u);
    EXPECT_EQ(all[0].name, "cora");
    EXPECT_EQ(all[7].name, "amazon");
}

TEST(Datasets, TableOneStructureTranscribed)
{
    const auto &reddit = datasetByName("reddit");
    EXPECT_EQ(reddit.paperNodes, 232965u);
    EXPECT_EQ(reddit.paperArcs, 114848857u);
    EXPECT_NEAR(reddit.paperAvgDegree, 493.0, 1.0);
    EXPECT_EQ(reddit.gcn.inFeatures, 602u);
    EXPECT_EQ(reddit.gcn.hidden, 64u);
    EXPECT_EQ(reddit.gcn.classes, 41u);
    EXPECT_DOUBLE_EQ(reddit.x0Density, 1.0);
    EXPECT_NEAR(reddit.x1Density, 0.639, 1e-9);

    const auto &cora = datasetByName("cora");
    EXPECT_EQ(cora.paperNodes, 2708u);
    EXPECT_EQ(cora.gcn.inFeatures, 1433u);
    EXPECT_EQ(cora.gcn.hidden, 16u);
    EXPECT_EQ(cora.gcn.classes, 7u);
}

TEST(Datasets, PaperDensityConsistentWithStructure)
{
    // Density of A should equal arcs / nodes^2 as published.
    for (const auto &d : allDatasets()) {
        double derived = static_cast<double>(d.paperArcs) /
                         (static_cast<double>(d.paperNodes) *
                          static_cast<double>(d.paperNodes));
        EXPECT_NEAR(derived / d.paperDensityA, 1.0, 0.05) << d.name;
    }
}

TEST(Datasets, LookupCaseInsensitive)
{
    EXPECT_EQ(datasetByName("CoRa").name, "cora");
}

TEST(Datasets, UnknownNameFatal)
{
    EXPECT_ANY_THROW(datasetByName("nope"));
}

TEST(Datasets, NamesAllExpands)
{
    auto v = datasetsByNames({"all"});
    EXPECT_EQ(v.size(), 8u);
    auto two = datasetsByNames({"cora", "yelp"});
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[1].name, "yelp");
}

TEST(Datasets, TierParsing)
{
    EXPECT_EQ(tierFromString("Full"), ScaleTier::Full);
    EXPECT_EQ(tierFromString("mini"), ScaleTier::Mini);
    EXPECT_EQ(tierFromString("TINY"), ScaleTier::Tiny);
    EXPECT_ANY_THROW(tierFromString("medium"));
}

TEST(Datasets, ScaledNodesMonotoneAcrossTiers)
{
    for (const auto &d : allDatasets()) {
        EXPECT_GE(scaledNodes(d, ScaleTier::Full),
                  scaledNodes(d, ScaleTier::Mini));
        EXPECT_GE(scaledNodes(d, ScaleTier::Mini),
                  scaledNodes(d, ScaleTier::Tiny));
        EXPECT_LE(scaledNodes(d, ScaleTier::Unit), 800u);
    }
}

TEST(Datasets, FullTierMatchesPaperNodes)
{
    for (const auto &d : allDatasets())
        EXPECT_EQ(scaledNodes(d, ScaleTier::Full), d.paperNodes);
}

TEST(Datasets, DegreeNeverExceedsHalfNodes)
{
    for (const auto &d : allDatasets())
        for (auto tier : {ScaleTier::Full, ScaleTier::Mini,
                          ScaleTier::Tiny, ScaleTier::Unit})
            EXPECT_LE(scaledAvgDegree(d, tier),
                      scaledNodes(d, tier) / 2.0)
                << d.name;
}

TEST(Datasets, BuildUnitTierFast)
{
    auto inst = buildDataset(datasetByName("cora"), ScaleTier::Unit);
    EXPECT_LE(inst.nodes(), 800u);
    EXPECT_GT(inst.graph.numArcs(), 0u);
    EXPECT_EQ(inst.plantedCommunity.size(), inst.nodes());
}

TEST(Datasets, BuildDeterministic)
{
    auto a = buildDataset(datasetByName("citeseer"), ScaleTier::Unit);
    auto b = buildDataset(datasetByName("citeseer"), ScaleTier::Unit);
    EXPECT_EQ(a.graph.adjacency(), b.graph.adjacency());
}

TEST(Datasets, MiniTierPreservesDegreeForSmallGraphs)
{
    // Small graphs are not rescaled at mini tier.
    const auto &cora = datasetByName("cora");
    EXPECT_EQ(scaledNodes(cora, ScaleTier::Mini), cora.paperNodes);
    EXPECT_DOUBLE_EQ(scaledAvgDegree(cora, ScaleTier::Mini),
                     cora.paperAvgDegree);
}

} // namespace
} // namespace grow::graph
