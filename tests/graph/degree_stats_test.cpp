#include <gtest/gtest.h>

#include "graph/degree_stats.hpp"
#include "graph/generators.hpp"

namespace grow::graph {
namespace {

TEST(DegreeStats, HistogramTotals)
{
    auto g = generateGrid(4, 4);
    auto h = degreeHistogram(g);
    EXPECT_EQ(h.total(), 16u);
    EXPECT_EQ(h.maxValue(), 4u);
    EXPECT_NEAR(h.mean(), g.avgDegree(), 1e-9);
}

TEST(DegreeStats, SortedDegreesDescending)
{
    auto g = generateChungLu(1000, 8.0, 2.2, 9);
    auto d = sortedDegreesDesc(g);
    ASSERT_EQ(d.size(), 1000u);
    for (size_t i = 1; i < d.size(); ++i)
        EXPECT_GE(d[i - 1], d[i]);
}

TEST(DegreeStats, TopKCoverageMonotone)
{
    auto g = generateChungLu(2000, 10.0, 2.1, 13);
    double c10 = topKDegreeCoverage(g, 10);
    double c100 = topKDegreeCoverage(g, 100);
    double cAll = topKDegreeCoverage(g, 2000);
    EXPECT_LE(c10, c100);
    EXPECT_LE(c100, cAll);
    EXPECT_NEAR(cAll, 1.0, 1e-9);
}

TEST(DegreeStats, PowerLawConcentration)
{
    // Fig. 11's premise: a small fraction of nodes covers a large
    // fraction of edges in power-law graphs, but not in uniform ones.
    auto pl = generateChungLu(5000, 12.0, 2.0, 17);
    auto er = generateErdosRenyi(5000, 30000, 17);
    double plCover = topKDegreeCoverage(pl, 250); // top 5%
    double erCover = topKDegreeCoverage(er, 250);
    EXPECT_GT(plCover, erCover * 1.5);
    EXPECT_GT(plCover, 0.25);
}

TEST(DegreeStats, GiniZeroForRegularGraph)
{
    // A cycle is 2-regular -> perfect equality.
    std::vector<std::pair<NodeId, NodeId>> edges;
    const uint32_t n = 100;
    for (uint32_t i = 0; i < n; ++i)
        edges.push_back({i, (i + 1) % n});
    auto g = Graph::fromEdges(n, edges);
    EXPECT_NEAR(degreeGini(g), 0.0, 1e-9);
}

TEST(DegreeStats, GiniHigherForPowerLaw)
{
    auto pl = generateChungLu(3000, 10.0, 2.0, 19);
    auto er = generateErdosRenyi(3000, 15000, 19);
    EXPECT_GT(degreeGini(pl), degreeGini(er) + 0.1);
}

TEST(DegreeStats, EmptyGraphSafe)
{
    auto g = Graph::fromEdges(5, {});
    EXPECT_DOUBLE_EQ(topKDegreeCoverage(g, 3), 0.0);
    EXPECT_DOUBLE_EQ(degreeGini(g), 0.0);
}

} // namespace
} // namespace grow::graph
