#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>

#include "graph/datasets.hpp"
#include "graph/file_graph.hpp"

namespace grow::graph {
namespace {

namespace fs = std::filesystem;

/** Fresh per-test scratch directory, removed on destruction. */
struct ScratchDir
{
    fs::path dir;

    ScratchDir()
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir = fs::temp_directory_path() /
              (std::string("grow_file_graph_") + info->name());
        fs::remove_all(dir);
        fs::create_directories(dir);
    }
    ~ScratchDir() { fs::remove_all(dir); }

    std::string path(const std::string &name) const
    {
        return (dir / name).string();
    }
};

void
expectSameGraph(const CsrView &a, const CsrView &b)
{
    ASSERT_EQ(a.numNodes(), b.numNodes());
    ASSERT_EQ(a.numArcs(), b.numArcs());
    for (size_t i = 0; i < a.offsets.size(); ++i)
        ASSERT_EQ(a.offsets[i], b.offsets[i]) << "offset " << i;
    for (size_t i = 0; i < a.adjacency.size(); ++i)
        ASSERT_EQ(a.adjacency[i], b.adjacency[i]) << "arc " << i;
}

TEST(FileGraph, RoundTripBitIdenticalOnEveryTableOneDataset)
{
    ScratchDir scratch;
    for (const auto &spec : allDatasets()) {
        auto inst = buildDataset(spec, ScaleTier::Unit);
        const std::string path = scratch.path(spec.name + ".growcsr");
        ASSERT_TRUE(writeCsrFile(path, spec, ScaleTier::Unit,
                                 inst.graph.view()));
        auto mapped = MappedCsrGraph::open(path);
        ASSERT_NE(mapped, nullptr) << spec.name;
        expectSameGraph(inst.graph.view(), mapped->view());
        EXPECT_EQ(mapped->spec().name, spec.name);
        EXPECT_EQ(mapped->spec().seed, spec.seed);
        EXPECT_EQ(mapped->spec().gcn.hidden, spec.gcn.hidden);
        EXPECT_EQ(mapped->tier(), ScaleTier::Unit);
        EXPECT_TRUE(mapped->spec().isFileBacked());
        EXPECT_EQ(mapped->spec().sourceChecksum, mapped->checksum());
        EXPECT_TRUE(mapped->validateStructure());
    }
}

TEST(FileGraph, WriteIsDeterministic)
{
    ScratchDir scratch;
    const auto &spec = datasetByName("cora");
    auto inst = buildDataset(spec, ScaleTier::Unit);
    const std::string a = scratch.path("a.growcsr");
    const std::string b = scratch.path("b.growcsr");
    ASSERT_TRUE(writeCsrFile(a, spec, ScaleTier::Unit, inst.graph.view()));
    ASSERT_TRUE(writeCsrFile(b, spec, ScaleTier::Unit, inst.graph.view()));
    std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
    std::string ba((std::istreambuf_iterator<char>(fa)), {});
    std::string bb((std::istreambuf_iterator<char>(fb)), {});
    EXPECT_EQ(ba, bb);
}

TEST(FileGraph, ConvertMatchesFromEdges)
{
    ScratchDir scratch;
    // A messy text file: comments, blanks, duplicates (both orders),
    // self loops, an ignored weight column, and an isolated node via
    // the hint.
    const std::string text = scratch.path("edges.txt");
    {
        std::ofstream out(text);
        out << "# comment\n% another comment\n\n"
            << "0 1\n1 0\n"   // duplicate in both orders
            << "2 2\n"        // self loop
            << "1 2 3.5\n"    // weighted line
            << "3 0\n0 3\n"   // duplicate again
            << "4 1\n";
    }
    DatasetSpec tmpl;
    tmpl.name = "messy";
    const std::string bin = scratch.path("messy.growcsr");
    auto stats =
        convertEdgeListFile(text, bin, tmpl, ScaleTier::Full, 7);

    EXPECT_EQ(stats.textEdges, 7u);
    EXPECT_EQ(stats.selfLoops, 1u);
    EXPECT_EQ(stats.nodes, 7u); // hint exceeds max id 4 + 1

    auto mapped = MappedCsrGraph::open(bin);
    ASSERT_NE(mapped, nullptr);
    auto reference = Graph::fromEdges(
        7, {{0, 1}, {1, 0}, {2, 2}, {1, 2}, {3, 0}, {0, 3}, {4, 1}});
    expectSameGraph(reference.view(), mapped->view());
    EXPECT_TRUE(mapped->validateStructure());
    EXPECT_EQ(mapped->numArcs(), stats.arcs);
}

TEST(FileGraph, ConvertLargerGraphMatchesFromEdges)
{
    ScratchDir scratch;
    // Deterministic pseudo-random edge soup, large enough to span many
    // rows with duplicates and self loops sprinkled in.
    std::mt19937 rng(123);
    const uint32_t n = 500;
    std::vector<std::pair<NodeId, NodeId>> edges;
    const std::string text = scratch.path("rand.txt");
    {
        std::ofstream out(text);
        for (int i = 0; i < 4000; ++i) {
            NodeId u = rng() % n, v = rng() % n;
            edges.push_back({u, v});
            out << u << ' ' << v << '\n';
        }
    }
    DatasetSpec tmpl;
    tmpl.name = "rand";
    const std::string bin = scratch.path("rand.growcsr");
    convertEdgeListFile(text, bin, tmpl, ScaleTier::Full, n);
    auto mapped = MappedCsrGraph::open(bin);
    ASSERT_NE(mapped, nullptr);
    expectSameGraph(Graph::fromEdges(n, edges).view(), mapped->view());
}

TEST(FileGraph, RejectsMissingTruncatedAndCorruptFiles)
{
    ScratchDir scratch;
    EXPECT_EQ(MappedCsrGraph::open(scratch.path("nope.growcsr")),
              nullptr);

    const auto &spec = datasetByName("cora");
    auto inst = buildDataset(spec, ScaleTier::Unit);
    const std::string good = scratch.path("good.growcsr");
    ASSERT_TRUE(writeCsrFile(good, spec, ScaleTier::Unit,
                             inst.graph.view()));
    std::ifstream in(good, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)), {});
    in.close();

    auto writeBytes = [&](const std::string &name,
                          const std::string &content) {
        const std::string p = scratch.path(name);
        std::ofstream out(p, std::ios::binary);
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size()));
        out.close();
        return p;
    };

    // Truncated at every interesting boundary.
    for (size_t keep :
         {size_t{0}, size_t{4}, size_t{15}, bytes.size() / 2,
          bytes.size() - 1}) {
        auto p = writeBytes("trunc.growcsr", bytes.substr(0, keep));
        EXPECT_EQ(MappedCsrGraph::open(p), nullptr)
            << "kept " << keep << " bytes";
    }

    // Single flipped payload byte: checksum must catch it.
    {
        std::string bad = bytes;
        bad[bytes.size() / 2] ^= 0x40;
        EXPECT_EQ(MappedCsrGraph::open(
                      writeBytes("corrupt.growcsr", bad)),
                  nullptr);
    }

    // Wrong magic.
    {
        std::string bad = bytes;
        bad[0] = 'X';
        EXPECT_EQ(MappedCsrGraph::open(writeBytes("magic.growcsr", bad)),
                  nullptr);
    }

    // Stale format version (header is not checksummed, so this tests
    // the version gate, not the checksum).
    {
        std::string bad = bytes;
        bad[8] = static_cast<char>(kCsrFileFormatVersion + 1);
        EXPECT_EQ(
            MappedCsrGraph::open(writeBytes("version.growcsr", bad)),
            nullptr);
    }

    // The pristine file still opens (the helpers above copied it).
    EXPECT_NE(MappedCsrGraph::open(good), nullptr);
}

TEST(FileGraph, RegisteredFileResolvesByNameAndIsIdempotent)
{
    ScratchDir scratch;
    // A renamed copy of citeseer: registering under the real name
    // would shadow the builtin for every later test in this binary.
    // Synthesis only reads the structural fields, so the builtin spec
    // produces the graph and the renamed spec labels the file.
    DatasetSpec custom = datasetByName("citeseer");
    custom.name = "filetest_citeseer";
    auto inst = buildDataset(datasetByName("citeseer"), ScaleTier::Unit);
    const std::string path = scratch.path("filetest.growcsr");
    ASSERT_TRUE(writeCsrFile(path, custom, ScaleTier::Unit,
                             inst.graph.view()));

    const auto &spec = registerFileDataset(path);
    EXPECT_TRUE(spec.isFileBacked());
    EXPECT_EQ(spec.name, "filetest_citeseer");
    EXPECT_EQ(spec.sourceTier, ScaleTier::Unit);
    // The registry lookup resolves the file-backed spec by name.
    EXPECT_TRUE(datasetByName("filetest_citeseer").isFileBacked());
    // Idempotent: same content registers fine and keeps one entry.
    const auto &again = registerFileDataset(path);
    EXPECT_EQ(again.sourceChecksum, spec.sourceChecksum);

    auto mapped = fileDatasetGraph(spec);
    ASSERT_NE(mapped, nullptr);
    expectSameGraph(inst.graph.view(), mapped->view());
    // Synthesized specs have no mapped graph.
    EXPECT_EQ(fileDatasetGraph(datasetByName("cora")), nullptr);
}

} // namespace
} // namespace grow::graph
