#include <gtest/gtest.h>

#include "graph/degree_stats.hpp"
#include "graph/generators.hpp"
#include "partition/metrics.hpp"

namespace grow::graph {
namespace {

TEST(Generators, DcSbmBasicShape)
{
    DcSbmParams p;
    p.nodes = 4000;
    p.avgDegree = 10.0;
    p.communities = 8;
    p.seed = 1;
    auto g = generateDcSbm(p);
    EXPECT_EQ(g.numNodes(), 4000u);
    // Duplicate removal trims a few percent.
    EXPECT_NEAR(g.avgDegree(), 10.0, 2.0);
    EXPECT_TRUE(g.validate());
}

TEST(Generators, DcSbmDeterministic)
{
    DcSbmParams p;
    p.nodes = 500;
    p.avgDegree = 6.0;
    p.communities = 4;
    p.seed = 42;
    auto a = generateDcSbm(p);
    auto b = generateDcSbm(p);
    EXPECT_EQ(a.adjacency(), b.adjacency());
}

TEST(Generators, DcSbmSeedChangesGraph)
{
    DcSbmParams p;
    p.nodes = 500;
    p.avgDegree = 6.0;
    p.seed = 1;
    auto a = generateDcSbm(p);
    p.seed = 2;
    auto b = generateDcSbm(p);
    EXPECT_NE(a.adjacency(), b.adjacency());
}

TEST(Generators, DcSbmPlantedCommunitiesAreAssortative)
{
    DcSbmParams p;
    p.nodes = 3000;
    p.avgDegree = 12.0;
    p.communities = 6;
    p.intraFraction = 0.85;
    p.seed = 7;
    std::vector<uint32_t> comm;
    auto g = generateDcSbm(p, comm);
    ASSERT_EQ(comm.size(), g.numNodes());

    partition::PartitionResult planted;
    planted.numParts = p.communities;
    planted.assignment = comm;
    auto q = partition::evaluatePartition(g, planted);
    // Intra fraction should be near the requested 0.85 (dedup losses
    // push it down slightly).
    EXPECT_GT(q.intraArcFraction, 0.7);
    // And far above the 1/k ~ 0.17 a random assignment would give.
    EXPECT_GT(q.intraArcFraction, 2.0 / p.communities);
}

TEST(Generators, DcSbmNodeIdsDoNotRevealCommunities)
{
    // Consecutive IDs must not be in the same community more often than
    // chance would allow by a wide margin (IDs are shuffled).
    DcSbmParams p;
    p.nodes = 4000;
    p.avgDegree = 8.0;
    p.communities = 8;
    p.seed = 3;
    std::vector<uint32_t> comm;
    generateDcSbm(p, comm);
    uint32_t sameAdjacent = 0;
    for (size_t i = 1; i < comm.size(); ++i)
        sameAdjacent += comm[i] == comm[i - 1];
    double frac = static_cast<double>(sameAdjacent) / (comm.size() - 1);
    EXPECT_LT(frac, 0.25); // chance level is 1/8 = 0.125
}

TEST(Generators, ChungLuPowerLawTail)
{
    auto g = generateChungLu(20000, 16.0, 2.2, 11);
    auto h = degreeHistogram(g);
    double alpha = h.powerLawAlpha(4);
    // MLE over a capped, deduplicated graph lands near the target.
    EXPECT_GT(alpha, 1.6);
    EXPECT_LT(alpha, 3.2);
    // Heavy tail: the max degree dwarfs the mean.
    EXPECT_GT(h.maxValue(), 10 * static_cast<uint64_t>(h.mean()));
}

TEST(Generators, RmatShape)
{
    RmatParams p;
    p.scale = 10;
    p.edgeFactor = 8.0;
    auto g = generateRmat(p);
    EXPECT_EQ(g.numNodes(), 1024u);
    EXPECT_GT(g.numEdges(), 2000u);
    EXPECT_TRUE(g.validate());
}

TEST(Generators, RmatSkewedDegrees)
{
    RmatParams p;
    p.scale = 12;
    p.edgeFactor = 8.0;
    auto g = generateRmat(p);
    EXPECT_GT(degreeGini(g), 0.3);
}

TEST(Generators, ErdosRenyiNearUniform)
{
    auto g = generateErdosRenyi(5000, 25000, 5);
    EXPECT_NEAR(static_cast<double>(g.numEdges()), 25000, 1500);
    // Uniform graphs have low degree inequality.
    EXPECT_LT(degreeGini(g), 0.25);
}

TEST(Generators, GridStructure)
{
    auto g = generateGrid(4, 3);
    EXPECT_EQ(g.numNodes(), 12u);
    // 2D grid: 2*W*H - W - H edges.
    EXPECT_EQ(g.numEdges(), 2u * 12 - 4 - 3);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(0, 4));
    EXPECT_FALSE(g.hasEdge(0, 5));
    EXPECT_TRUE(g.validate());
}

/** Degree sweep: generated average degree tracks the request. */
class DegreeSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(DegreeSweep, AvgDegreeNearTarget)
{
    DcSbmParams p;
    p.nodes = 3000;
    p.avgDegree = GetParam();
    p.communities = 4;
    p.seed = 17;
    auto g = generateDcSbm(p);
    EXPECT_NEAR(g.avgDegree(), p.avgDegree, 0.25 * p.avgDegree + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Degrees, DegreeSweep,
                         ::testing::Values(4.0, 8.0, 20.0, 50.0));

} // namespace
} // namespace grow::graph
