#include <gtest/gtest.h>

#include "graph/graph.hpp"

namespace grow::graph {
namespace {

Graph
triangle()
{
    return Graph::fromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
}

TEST(Graph, FromEdgesBasics)
{
    auto g = triangle();
    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_EQ(g.numArcs(), 6u);
    EXPECT_DOUBLE_EQ(g.avgDegree(), 2.0);
    EXPECT_TRUE(g.validate());
}

TEST(Graph, DropsSelfLoopsAndDuplicates)
{
    auto g = Graph::fromEdges(3, {{0, 1}, {1, 0}, {0, 0}, {0, 1}});
    EXPECT_EQ(g.numEdges(), 1u);
    EXPECT_EQ(g.degree(0), 1u);
    EXPECT_EQ(g.degree(2), 0u);
}

TEST(Graph, NeighborsSorted)
{
    auto g = Graph::fromEdges(5, {{2, 4}, {2, 0}, {2, 3}, {2, 1}});
    auto nb = g.neighbors(2);
    ASSERT_EQ(nb.size(), 4u);
    for (size_t i = 1; i < nb.size(); ++i)
        EXPECT_LT(nb[i - 1], nb[i]);
}

TEST(Graph, HasEdgeSymmetric)
{
    auto g = triangle();
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 0));
    EXPECT_FALSE(g.hasEdge(0, 0));
}

TEST(Graph, Density)
{
    auto g = triangle();
    EXPECT_DOUBLE_EQ(g.density(), 6.0 / 9.0);
}

TEST(Graph, RelabeledPreservesStructure)
{
    auto g = Graph::fromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
    // Reverse the labels.
    auto r = g.relabeled({3, 2, 1, 0});
    EXPECT_TRUE(r.validate());
    EXPECT_EQ(r.numEdges(), g.numEdges());
    // Old edge (0,1) -> new (3,2).
    EXPECT_TRUE(r.hasEdge(3, 2));
    EXPECT_TRUE(r.hasEdge(2, 1));
    EXPECT_TRUE(r.hasEdge(1, 0));
    EXPECT_FALSE(r.hasEdge(3, 0));
    // Degrees permute with the labels.
    EXPECT_EQ(r.degree(3), g.degree(0));
    EXPECT_EQ(r.degree(2), g.degree(1));
}

TEST(Graph, RelabelRejectsNonPermutation)
{
    auto g = triangle();
    EXPECT_ANY_THROW(g.relabeled({0, 0, 1}));
}

TEST(Graph, EmptyGraph)
{
    auto g = Graph::fromEdges(4, {});
    EXPECT_EQ(g.numArcs(), 0u);
    EXPECT_DOUBLE_EQ(g.avgDegree(), 0.0);
    EXPECT_TRUE(g.validate());
}

TEST(Graph, EdgeEndpointOutOfRangeRejected)
{
    EXPECT_ANY_THROW(Graph::fromEdges(2, {{0, 2}}));
}

} // namespace
} // namespace grow::graph
