#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/normalize.hpp"

namespace grow::graph {
namespace {

TEST(Normalize, SelfLoopsOnDiagonal)
{
    auto g = Graph::fromEdges(3, {{0, 1}});
    auto a = normalizedAdjacency(g, true);
    EXPECT_EQ(a.rows(), 3u);
    // Every node has a diagonal entry.
    for (NodeId v = 0; v < 3; ++v) {
        bool diag = false;
        for (NodeId c : a.rowCols(v))
            diag |= c == v;
        EXPECT_TRUE(diag) << "node " << v;
    }
    // Isolated node 2: degree 0 + self loop -> value 1.
    EXPECT_DOUBLE_EQ(a.rowVals(2)[0], 1.0);
}

TEST(Normalize, SymmetricValues)
{
    auto g = generateGrid(5, 4);
    auto a = normalizedAdjacency(g, true);
    auto at = a.transposed();
    ASSERT_EQ(at.nnz(), a.nnz());
    EXPECT_EQ(at.colIdx(), a.colIdx());
    for (size_t i = 0; i < a.values().size(); ++i)
        EXPECT_NEAR(at.values()[i], a.values()[i], 1e-12);
}

TEST(Normalize, KnownTwoNodeValues)
{
    // Two connected nodes with self loops: deg+1 = 2 for both, so every
    // entry is 1/sqrt(2)/sqrt(2) = 0.5.
    auto g = Graph::fromEdges(2, {{0, 1}});
    auto a = normalizedAdjacency(g, true);
    EXPECT_EQ(a.nnz(), 4u);
    for (double v : a.values())
        EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(Normalize, WithoutSelfLoops)
{
    auto g = Graph::fromEdges(2, {{0, 1}});
    auto a = normalizedAdjacency(g, false);
    EXPECT_EQ(a.nnz(), 2u);
    for (double v : a.values())
        EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Normalize, SpectralRadiusBounded)
{
    // Row sums of D^-1/2 (A+I) D^-1/2 are <= 1 when degrees are equal,
    // and the matrix is substochastic-like in general: all entries in
    // (0, 1].
    auto g = generateChungLu(500, 8.0, 2.3, 3);
    auto a = normalizedAdjacency(g, true);
    for (double v : a.values()) {
        EXPECT_GT(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(Normalize, BinaryAdjacencyOnesOnly)
{
    auto g = Graph::fromEdges(3, {{0, 1}, {1, 2}});
    auto a = binaryAdjacency(g);
    EXPECT_EQ(a.nnz(), 4u);
    for (double v : a.values())
        EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Normalize, NnzMatchesArcsPlusLoops)
{
    auto g = generateGrid(6, 6);
    auto a = normalizedAdjacency(g, true);
    EXPECT_EQ(a.nnz(), g.numArcs() + g.numNodes());
}

} // namespace
} // namespace grow::graph
