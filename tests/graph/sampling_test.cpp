/**
 * @file
 * Seeded neighbour sampling (SAGEConv fanout-k operand): determinism,
 * fanout bounds, the mean normalization, and CSR validity.
 */
#include <gtest/gtest.h>

#include "graph/datasets.hpp"
#include "graph/sampling.hpp"

namespace grow::graph {
namespace {

const Graph &
unitGraph()
{
    static Graph g =
        buildDataset(datasetByName("cora"), ScaleTier::Unit).graph;
    return g;
}

TEST(Sampling, SameSeedIsBitIdentical)
{
    const auto &g = unitGraph();
    auto a = sampleNeighborAdjacency(g, 5, 42);
    auto b = sampleNeighborAdjacency(g, 5, 42);
    EXPECT_EQ(a.rowPtr(), b.rowPtr());
    EXPECT_EQ(a.colIdx(), b.colIdx());
    EXPECT_EQ(a.values(), b.values());
}

TEST(Sampling, DifferentSeedDiffers)
{
    const auto &g = unitGraph();
    // Fanout 1 on a connected graph: almost every node truncates its
    // neighbour list, so two seeds cannot draw identical sets.
    auto a = sampleNeighborAdjacency(g, 1, 1);
    auto b = sampleNeighborAdjacency(g, 1, 2);
    EXPECT_NE(a.colIdx(), b.colIdx());
}

TEST(Sampling, RowsHoldSelfPlusAtMostFanoutNeighbors)
{
    const auto &g = unitGraph();
    const uint32_t fanout = 4;
    auto s = sampleNeighborAdjacency(g, fanout, 7);
    ASSERT_EQ(s.rows(), g.numNodes());
    ASSERT_EQ(s.cols(), g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        const uint64_t expect = std::min<uint64_t>(fanout, g.degree(v)) + 1;
        EXPECT_EQ(s.rowNnz(v), expect) << "node " << v;
        // Self always included; every sampled column is a neighbour.
        bool self = false;
        for (NodeId c : s.rowCols(v)) {
            if (c == v)
                self = true;
            else
                EXPECT_TRUE(g.hasEdge(v, c)) << v << "->" << c;
        }
        EXPECT_TRUE(self) << "node " << v;
    }
    EXPECT_TRUE(s.validate());
}

TEST(Sampling, RowsAreMeanNormalized)
{
    const auto &g = unitGraph();
    auto s = sampleNeighborAdjacency(g, 3, 11);
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        double sum = 0;
        for (double x : s.rowVals(v)) {
            EXPECT_DOUBLE_EQ(
                x, 1.0 / static_cast<double>(s.rowNnz(v)));
            sum += x;
        }
        EXPECT_NEAR(sum, 1.0, 1e-12);
    }
}

TEST(Sampling, LargeFanoutKeepsEveryNeighbor)
{
    const auto &g = unitGraph();
    uint32_t maxDeg = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        maxDeg = std::max(maxDeg, g.degree(v));
    auto s = sampleNeighborAdjacency(g, maxDeg, 3);
    EXPECT_EQ(s.nnz(), g.numArcs() + g.numNodes());
}

} // namespace
} // namespace grow::graph
