/**
 * @file
 * Declarative mapping layer: structural validation, qmaestro-style
 * rendering, the dataflows the engines publish, and the lowering
 * contract -- buildPhasePlan must produce field-identical problems no
 * matter which engine's mapping (or the generic fallback) it lowers
 * against, because every published spec agrees on the lowering-visible
 * fields.
 */
#include <gtest/gtest.h>

#include <memory>

#include "core/grow.hpp"
#include "driver/engine_factory.hpp"
#include "gcn/runner.hpp"
#include "gcn/workload.hpp"
#include "mapping/mapping.hpp"

namespace grow::mapping {
namespace {

TEST(Mapping, GenericMappingValidates)
{
    const EngineMapping &em = genericMapping();
    EXPECT_EQ(em.engine, "generic");
    EXPECT_FALSE(em.consumesPartitioning);
    EXPECT_EQ(em.combination.phaseClass, PhaseClass::DenseResident);
    EXPECT_EQ(em.aggregation.phaseClass, PhaseClass::SparseStreaming);
    EXPECT_TRUE(em.combination.rhsResident());
    EXPECT_FALSE(em.aggregation.rhsResident());
    EXPECT_NO_THROW(validate(em));
    // spec() routes by phase class.
    EXPECT_EQ(&em.spec(PhaseClass::DenseResident), &em.combination);
    EXPECT_EQ(&em.spec(PhaseClass::SparseStreaming), &em.aggregation);
}

TEST(Mapping, ValidateRejectsStructuralViolations)
{
    MappingSpec ok = genericMapping().aggregation;
    EXPECT_NO_THROW(validate(ok));

    MappingSpec missingDim = ok;
    missingDim.loops = {{Dim::M, MapKind::Temporal, 0},
                        {Dim::K, MapKind::Temporal, 1}};
    EXPECT_ANY_THROW(validate(missingDim));

    MappingSpec twoSpatial = ok;
    twoSpatial.loops = {{Dim::M, MapKind::Spatial, 0},
                        {Dim::K, MapKind::Temporal, 1},
                        {Dim::N, MapKind::Spatial, 0}};
    EXPECT_ANY_THROW(validate(twoSpatial));

    MappingSpec zeroLanes = ok;
    zeroLanes.spatialLanes = 0;
    EXPECT_ANY_THROW(validate(zeroLanes));

    MappingSpec zeroWindow = ok;
    zeroWindow.rowWindow = 0;
    EXPECT_ANY_THROW(validate(zeroWindow));

    // A dense-resident phase cannot carry a pinned reuse cache.
    MappingSpec pinnedResident = ok;
    pinnedResident.phaseClass = PhaseClass::DenseResident;
    pinnedResident.denseReuse = DenseReuse::PinnedCache;
    EXPECT_ANY_THROW(validate(pinnedResident));
}

TEST(Mapping, ValidateRejectsMisclassifiedEngineMapping)
{
    EngineMapping em = genericMapping();
    em.combination.phaseClass = PhaseClass::SparseStreaming;
    EXPECT_ANY_THROW(validate(em));

    EngineMapping unnamed = genericMapping();
    unnamed.engine.clear();
    EXPECT_ANY_THROW(validate(unnamed));

    EngineMapping noBw = genericMapping();
    noBw.dramBytesPerCycle = 0.0;
    EXPECT_ANY_THROW(validate(noBw));
}

TEST(Mapping, DescribeRendersQmaestroStyle)
{
    core::GrowSim grow(driver::growDefaultConfig());
    const std::string agg = describe(grow.mapping().aggregation);
    EXPECT_NE(agg.find("row-stationary"), std::string::npos);
    EXPECT_NE(agg.find("TemporalMap(16,16) M;"), std::string::npos);
    EXPECT_NE(agg.find("SpatialMap(16,16) N;"), std::string::npos);
    EXPECT_NE(agg.find("reuse=pinned-cache"), std::string::npos);
    EXPECT_NE(agg.find("rhs=dense-rows"), std::string::npos);

    accel::GcnaxSim gcnax(driver::gcnaxDefaultConfig());
    const std::string tiled = describe(gcnax.mapping().aggregation);
    EXPECT_NE(tiled.find("output-stationary"), std::string::npos);
    // Runtime-searched tile extents render as wildcards.
    EXPECT_NE(tiled.find("TemporalMap(*,*)"), std::string::npos);
    EXPECT_NE(tiled.find("reuse=tiled"), std::string::npos);
}

TEST(Mapping, EnginesPublishTheirDataflows)
{
    core::GrowSim grow(driver::growDefaultConfig());
    auto g = grow.mapping();
    EXPECT_EQ(g.engine, "grow");
    EXPECT_TRUE(g.consumesPartitioning);
    EXPECT_EQ(g.aggregation.denseReuse, DenseReuse::PinnedCache);
    EXPECT_EQ(g.combination.denseReuse, DenseReuse::Resident);
    EXPECT_GT(g.aggregation.streamChunkBytes, 0u); // event-driven rows
    EXPECT_GT(g.aggregation.pinnedIdEntries, 0u);
    EXPECT_GT(g.aggregation.bufferCapacity(BufferRole::RowCache), 0u);
    EXPECT_GT(g.combination.bufferCapacity(BufferRole::DenseInput), 0u);
    EXPECT_EQ(g.combination.bufferCapacity(BufferRole::MergeQueue), 0u);

    accel::GcnaxSim gcnax(driver::gcnaxDefaultConfig());
    auto x = gcnax.mapping();
    EXPECT_FALSE(x.consumesPartitioning);
    EXPECT_EQ(x.aggregation.denseReuse, DenseReuse::Tiled);
    EXPECT_EQ(x.aggregation.stationarity, Stationarity::Output);
    EXPECT_GT(x.aggregation.minTileK, 0u);
    EXPECT_EQ(x.aggregation.streamChunkBytes, 0u);

    accel::GammaSim gamma(driver::gammaDefaultConfig());
    auto a = gamma.mapping();
    EXPECT_EQ(a.aggregation.denseReuse, DenseReuse::LruCache);
    EXPECT_EQ(a.aggregation.rhsFormat, OperandFormat::CompressedFiber);
    EXPECT_GT(a.aggregation.reductionLanes, 0u);

    accel::MatRaptorSim mat(driver::matraptorDefaultConfig());
    auto m = mat.mapping();
    EXPECT_EQ(m.aggregation.denseReuse, DenseReuse::None);
    EXPECT_EQ(m.aggregation.stationarity, Stationarity::None);
    EXPECT_GT(m.aggregation.bufferCapacity(BufferRole::MergeQueue), 0u);
}

TEST(Mapping, GrowConfigVariantsReachTheSpec)
{
    core::GrowSim lru(driver::growLruConfig());
    EXPECT_EQ(lru.mapping().aggregation.denseReuse, DenseReuse::LruCache);

    core::GrowSim nocache(driver::growNoCacheConfig());
    auto nc = nocache.mapping();
    EXPECT_EQ(nc.aggregation.denseReuse, DenseReuse::None);
    EXPECT_EQ(nc.aggregation.pinnedIdEntries, 0u);
    EXPECT_EQ(nc.aggregation.bufferCapacity(BufferRole::RowCache), 0u);

    core::GrowConfig narrow = driver::growDefaultConfig();
    narrow.runaheadDegree = 2;
    narrow.ldnEntries = 2;
    core::GrowSim sim(narrow);
    auto nm = sim.mapping();
    EXPECT_EQ(nm.aggregation.rowWindow, 2u);
    EXPECT_EQ(nm.aggregation.missConcurrency, 2u);
}

/** The lowering-visible problem fields of two plans must agree. */
void
expectPlansEquivalent(const gcn::PhasePlan &a, const gcn::PhasePlan &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].problem.label, b[i].problem.label);
        EXPECT_EQ(a[i].problem.rhsOnChip, b[i].problem.rhsOnChip);
        EXPECT_EQ(a[i].problem.phase, b[i].problem.phase);
        EXPECT_EQ(a[i].problem.lhs, b[i].problem.lhs);
        EXPECT_EQ(a[i].problem.rhsCols, b[i].problem.rhsCols);
        EXPECT_EQ(a[i].problem.clustering, b[i].problem.clustering);
        EXPECT_EQ(a[i].problem.hdnLists, b[i].problem.hdnLists);
        EXPECT_EQ(a[i].op, b[i].op);
        EXPECT_EQ(a[i].layer, b[i].layer);
    }
}

TEST(Mapping, PlanProblemsAreIdenticalUnderEveryEngineMapping)
{
    gcn::WorkloadConfig wc;
    wc.tier = graph::ScaleTier::Unit;
    auto w = gcn::buildWorkload(graph::datasetByName("cora"), wc);

    std::vector<EngineMapping> mappings;
    mappings.push_back(
        core::GrowSim(driver::growDefaultConfig()).mapping());
    mappings.push_back(
        accel::GcnaxSim(driver::gcnaxDefaultConfig()).mapping());
    mappings.push_back(
        accel::GammaSim(driver::gammaDefaultConfig()).mapping());
    mappings.push_back(
        accel::MatRaptorSim(driver::matraptorDefaultConfig()).mapping());

    for (bool part : {false, true}) {
        gcn::RunnerOptions generic;
        generic.usePartitioning = part;
        auto reference = gcn::buildPhasePlan(w, generic);
        for (const auto &em : mappings) {
            gcn::RunnerOptions opt;
            opt.usePartitioning = part;
            opt.mapping = std::make_shared<EngineMapping>(em);
            auto plan = gcn::buildPhasePlan(w, opt);
            expectPlansEquivalent(reference, plan);
        }
    }
}

} // namespace
} // namespace grow::mapping
