#include <gtest/gtest.h>

#include "mem/dma.hpp"
#include "mem/dram.hpp"

namespace grow::mem {
namespace {

TEST(DmaEngine, ChunksLargeTransfers)
{
    DramConfig cfg;
    SimpleDram dram(cfg);
    DmaEngine dma(dram, 256);
    dma.streamRead(0, 0, 1024, TrafficClass::HdnPreload);
    EXPECT_EQ(dma.requestsIssued(), 4u);
    EXPECT_EQ(dram.traffic().totalRead(), 1024u);
}

TEST(DmaEngine, PartialTailChunk)
{
    DramConfig cfg;
    SimpleDram dram(cfg);
    DmaEngine dma(dram, 256);
    dma.streamRead(0, 0, 300, TrafficClass::HdnPreload);
    EXPECT_EQ(dma.requestsIssued(), 2u);
    // 256 + 64 (44 rounded up to a line).
    EXPECT_EQ(dram.traffic().totalRead(), 320u);
}

TEST(DmaEngine, CompletionMonotone)
{
    DramConfig cfg;
    cfg.bandwidthGBps = 32.0;
    SimpleDram dram(cfg);
    DmaEngine dma(dram, 256);
    Cycle small = dma.streamRead(0, 0, 256, TrafficClass::DenseRow);
    Cycle large = dma.streamRead(0, 1 << 20, 8192, TrafficClass::DenseRow);
    EXPECT_GT(large, small);
}

TEST(DmaEngine, WritePath)
{
    DramConfig cfg;
    SimpleDram dram(cfg);
    DmaEngine dma(dram, 512);
    dma.streamWrite(0, 0, 2048, TrafficClass::OutputWrite);
    EXPECT_EQ(dram.traffic().totalWrite(), 2048u);
}

TEST(DmaEngine, ChunkSmallerThanLineRejected)
{
    DramConfig cfg;
    SimpleDram dram(cfg);
    EXPECT_ANY_THROW(DmaEngine(dram, 32));
}

} // namespace
} // namespace grow::mem
