#include <gtest/gtest.h>

#include "mem/dram.hpp"

namespace grow::mem {
namespace {

DramConfig
cfg(double gbps = 128.0, Cycle latency = 100)
{
    DramConfig c;
    c.bandwidthGBps = gbps;
    c.accessLatency = latency;
    return c;
}

TEST(SimpleDram, SingleReadLatency)
{
    SimpleDram d(cfg());
    // 64 B at 128 B/cycle -> 1 cycle of bus + 100 latency.
    Cycle done = d.read(0, 0, 64, TrafficClass::DenseRow);
    EXPECT_EQ(done, 101u);
}

TEST(SimpleDram, LineRounding)
{
    SimpleDram d(cfg());
    d.read(0, 0, 1, TrafficClass::Metadata);
    EXPECT_EQ(d.traffic().readBytes[static_cast<size_t>(
                  TrafficClass::Metadata)],
              64u);
}

TEST(SimpleDram, BandwidthSerializesRequests)
{
    // 32 B/cycle: a 6400 B read occupies the channel for 200 cycles.
    SimpleDram d(cfg(32.0, 10));
    Cycle first = d.read(0, 0, 6400, TrafficClass::DenseRow);
    EXPECT_EQ(first, 210u);
    // Second request issued at t=0 must wait for the channel.
    Cycle second = d.read(0, 1 << 20, 64, TrafficClass::DenseRow);
    EXPECT_EQ(second, 212u);
}

TEST(SimpleDram, ZeroByteRequestStillOneLine)
{
    SimpleDram d(cfg());
    d.read(0, 0, 0, TrafficClass::DenseRow);
    EXPECT_EQ(d.traffic().totalRead(), 64u);
}

TEST(SimpleDram, SustainedBandwidthExact)
{
    // Issue 1000 x 256 B back-to-back; channel time must equal
    // totalBytes / bytesPerCycle within rounding.
    SimpleDram d(cfg(128.0, 0));
    Cycle done = 0;
    for (int i = 0; i < 1000; ++i)
        done = d.read(0, i * 256, 256, TrafficClass::SparseStream);
    double expect = 1000.0 * 256.0 / 128.0;
    EXPECT_NEAR(static_cast<double>(done), expect, expect * 0.01 + 2);
}

TEST(SimpleDram, SubCycleTransfersConserveBandwidth)
{
    // 64 B lines at 128 B/cycle are half-cycle transfers: the old
    // clamped carry charged a full cycle each, doubling busyCycles_.
    // The exact carry must make long-run channel occupancy converge to
    // totalBytes / bytesPerCycle.
    SimpleDram d(cfg(128.0, 0));
    const int n = 10000;
    Cycle done = 0;
    for (int i = 0; i < n; ++i)
        done = d.read(0, i * 64, 64, TrafficClass::SparseStream);
    const double exact = n * 64.0 / 128.0; // 5000 cycles
    EXPECT_NEAR(static_cast<double>(d.busyCycles()), exact, 1.0);
    EXPECT_NEAR(static_cast<double>(done), exact, 2.0);
}

TEST(SimpleDram, MixedSizeTransfersConserveBandwidth)
{
    // Alternate sub-cycle and multi-cycle transfers; the residual must
    // carry across both directions without drifting.
    SimpleDram d(cfg(96.0, 0)); // 96 B/cycle: 64 B lines = 2/3 cycle
    Bytes total = 0;
    for (int i = 0; i < 3000; ++i) {
        Bytes b = (i % 3 == 0) ? 256 : 64;
        d.read(0, i * 4096, b, TrafficClass::DenseRow);
        total += b;
    }
    const double exact = static_cast<double>(total) / 96.0;
    EXPECT_NEAR(static_cast<double>(d.busyCycles()), exact, 1.0);
}

TEST(SimpleDram, TransfersAreNeverInstantaneous)
{
    // Even a sub-cycle transfer completes at least one cycle after
    // issue (the engine must never observe a zero-latency DRAM fetch).
    SimpleDram d(cfg(1024.0, 0)); // 64 B = 1/16 cycle
    for (Cycle now = 0; now < 20; ++now) {
        Cycle done = d.read(now, now * 64, 64, TrafficClass::DenseRow);
        EXPECT_GE(done, now + 1);
    }
}

TEST(SimpleDram, WritesArePosted)
{
    SimpleDram d(cfg(128.0, 100));
    // Writes do not pay the access latency (posted).
    Cycle done = d.write(0, 0, 128, TrafficClass::OutputWrite);
    EXPECT_EQ(done, 1u);
    EXPECT_EQ(d.traffic().totalWrite(), 128u);
}

TEST(SimpleDram, TrafficClassification)
{
    SimpleDram d(cfg());
    d.read(0, 0, 64, TrafficClass::SparseStream);
    d.read(0, 0, 128, TrafficClass::DenseRow);
    d.write(0, 0, 64, TrafficClass::OutputWrite);
    const auto &t = d.traffic();
    EXPECT_EQ(t.readBytes[static_cast<size_t>(TrafficClass::SparseStream)],
              64u);
    EXPECT_EQ(t.readBytes[static_cast<size_t>(TrafficClass::DenseRow)],
              128u);
    EXPECT_EQ(t.writeBytes[static_cast<size_t>(TrafficClass::OutputWrite)],
              64u);
    EXPECT_EQ(t.total(), 256u);
}

TEST(SimpleDram, HigherBandwidthIsFaster)
{
    SimpleDram slow(cfg(16.0, 50));
    SimpleDram fast(cfg(256.0, 50));
    Cycle a = 0, b = 0;
    for (int i = 0; i < 100; ++i) {
        a = slow.read(0, 0, 512, TrafficClass::DenseRow);
        b = fast.read(0, 0, 512, TrafficClass::DenseRow);
    }
    EXPECT_GT(a, b * 4);
}

TEST(BankedDram, SequentialStreamsHitOpenRows)
{
    BankedDram d(cfg(), BankTiming{});
    // Stream 64 KiB sequentially: row-buffer hit rate should be high.
    for (uint64_t a = 0; a < 64 * 1024; a += 64)
        d.read(0, a, 64, TrafficClass::SparseStream);
    EXPECT_GT(d.rowHitRate(), 0.8);
}

TEST(BankedDram, RandomAccessesMissRows)
{
    BankedDram d(cfg(), BankTiming{});
    // Large-stride accesses land in fresh rows.
    uint64_t a = 0;
    for (int i = 0; i < 1000; ++i) {
        d.read(0, a, 64, TrafficClass::DenseRow);
        a += 1 << 20;
    }
    EXPECT_LT(d.rowHitRate(), 0.2);
}

TEST(BankedDram, CompletionAfterIssue)
{
    BankedDram d(cfg(), BankTiming{});
    Cycle done = d.read(500, 0, 256, TrafficClass::DenseRow);
    EXPECT_GT(done, 500u);
}

TEST(MakeDram, FactoryKinds)
{
    EXPECT_NE(makeDram("simple", cfg()), nullptr);
    EXPECT_NE(makeDram("banked", cfg()), nullptr);
    EXPECT_ANY_THROW(makeDram("quantum", cfg()));
}

/** Property: both DRAM models conserve traffic accounting. */
class DramKindSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(DramKindSweep, TrafficConservation)
{
    auto d = makeDram(GetParam(), cfg());
    Bytes expect = 0;
    for (int i = 0; i < 200; ++i) {
        Bytes b = 64 + (i % 5) * 64;
        d->read(i * 10, i * 4096, b, TrafficClass::DenseRow);
        expect += b;
    }
    EXPECT_EQ(d->traffic().totalRead(), expect);
    d->clearTraffic();
    EXPECT_EQ(d->traffic().total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, DramKindSweep,
                         ::testing::Values("simple", "banked"));

} // namespace
} // namespace grow::mem
