#include <gtest/gtest.h>

#include "mem/hdn_cache.hpp"

namespace grow::mem {
namespace {

HdnCacheConfig
smallConfig(Bytes capacity = 1024, uint32_t cam = 8, Bytes row = 128)
{
    HdnCacheConfig c;
    c.capacityBytes = capacity;
    c.camEntries = cam;
    c.rowBytes = row;
    return c;
}

TEST(HdnCache, MaxResidentRowsCapacityBound)
{
    // 1024 B / 128 B rows = 8 rows, CAM allows 8.
    EXPECT_EQ(smallConfig().maxResidentRows(), 8u);
    // CAM-bound: capacity would allow 8 but CAM only 4.
    EXPECT_EQ(smallConfig(1024, 4).maxResidentRows(), 4u);
    // Capacity-bound: CAM allows 8 but only 2 rows fit.
    EXPECT_EQ(smallConfig(256, 8).maxResidentRows(), 2u);
}

TEST(HdnCache, TableThreeDefaults)
{
    // 512 KB / (64 features x 8 B) = 1024 rows; 4096 CAM entries.
    HdnCacheConfig c;
    c.rowBytes = 64 * 8;
    EXPECT_EQ(c.maxResidentRows(), 1024u);
    // With 16-wide features the CAM becomes the limit: 4096.
    c.rowBytes = 16 * 8;
    EXPECT_EQ(c.maxResidentRows(), 4096u);
}

TEST(HdnCache, PinnedLookupHits)
{
    HdnCache cache(smallConfig(), 100);
    cache.loadCluster({1, 2, 3});
    EXPECT_TRUE(cache.lookup(1));
    EXPECT_TRUE(cache.lookup(2));
    EXPECT_FALSE(cache.lookup(4));
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_NEAR(cache.hitRate(), 2.0 / 3.0, 1e-12);
}

TEST(HdnCache, LoadClusterEvictsPrevious)
{
    HdnCache cache(smallConfig(), 100);
    cache.loadCluster({1, 2});
    EXPECT_TRUE(cache.resident(1));
    cache.loadCluster({3});
    EXPECT_FALSE(cache.resident(1));
    EXPECT_TRUE(cache.resident(3));
    EXPECT_EQ(cache.residentRows(), 1u);
}

TEST(HdnCache, CapacityTruncatesList)
{
    HdnCache cache(smallConfig(1024, 8, 128), 100); // 8 rows max
    std::vector<NodeId> ids;
    for (NodeId i = 0; i < 20; ++i)
        ids.push_back(i);
    uint32_t pinned = cache.loadCluster(ids);
    EXPECT_EQ(pinned, 8u);
    EXPECT_TRUE(cache.resident(7));
    EXPECT_FALSE(cache.resident(8));
}

TEST(HdnCache, DuplicateIdsPinnedOnce)
{
    HdnCache cache(smallConfig(), 100);
    uint32_t pinned = cache.loadCluster({5, 5, 5, 6});
    EXPECT_EQ(pinned, 2u);
}

TEST(HdnCache, EmptyCacheNeverHits)
{
    HdnCache cache(smallConfig(), 100);
    EXPECT_FALSE(cache.lookup(0));
    cache.loadCluster({});
    EXPECT_FALSE(cache.lookup(0));
}

TEST(HdnCache, SramCountersTrackActivity)
{
    HdnCache cache(smallConfig(), 100);
    cache.loadCluster({1, 2});
    EXPECT_EQ(cache.dataArray().writeAccesses(), 2u);
    cache.lookup(1); // hit: data read + CAM read
    cache.lookup(9); // miss: CAM read only
    EXPECT_EQ(cache.dataArray().readAccesses(), 1u);
    EXPECT_EQ(cache.camArray().readAccesses(), 2u);
}

TEST(HdnCache, RowsLoadedAccumulates)
{
    HdnCache cache(smallConfig(), 100);
    cache.loadCluster({1, 2});
    cache.loadCluster({3, 4, 5});
    EXPECT_EQ(cache.rowsLoaded(), 5u);
}

TEST(HdnCache, OutOfUniverseRejected)
{
    HdnCache cache(smallConfig(), 10);
    EXPECT_ANY_THROW(cache.lookup(10));
    EXPECT_ANY_THROW(cache.loadCluster({11}));
}

TEST(HdnCache, ClearStatsKeepsPins)
{
    HdnCache cache(smallConfig(), 100);
    cache.loadCluster({1});
    cache.lookup(1);
    cache.clearStats();
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_TRUE(cache.resident(1));
}

} // namespace
} // namespace grow::mem
