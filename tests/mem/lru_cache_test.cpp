#include <gtest/gtest.h>

#include "mem/lru_cache.hpp"

namespace grow::mem {
namespace {

TEST(LruRowCache, BasicHitMiss)
{
    LruRowCache c(4 * 128, 128); // 4 rows
    EXPECT_FALSE(c.lookup(1));
    c.insert(1);
    EXPECT_TRUE(c.lookup(1));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(LruRowCache, EvictsLeastRecentlyUsed)
{
    LruRowCache c(2 * 128, 128); // 2 rows
    c.insert(1);
    c.insert(2);
    EXPECT_TRUE(c.lookup(1)); // 1 now most recent
    c.insert(3);              // evicts 2
    EXPECT_TRUE(c.lookup(1));
    EXPECT_FALSE(c.lookup(2));
    EXPECT_TRUE(c.lookup(3));
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(LruRowCache, PinnedRowsSurvive)
{
    LruRowCache c(2 * 128, 128);
    c.pin(1);
    c.insert(2);
    c.insert(3); // must evict 2, not pinned 1
    EXPECT_TRUE(c.lookup(1));
    EXPECT_FALSE(c.lookup(2));
}

TEST(LruRowCache, DoubleInsertNoop)
{
    LruRowCache c(2 * 128, 128);
    c.insert(1);
    c.insert(1);
    EXPECT_EQ(c.residentRows(), 1u);
}

TEST(LruRowCache, CapacityAtLeastOneRow)
{
    LruRowCache c(10, 128); // capacity smaller than a row
    EXPECT_EQ(c.maxRows(), 1u);
    c.insert(1);
    EXPECT_TRUE(c.lookup(1));
}

TEST(LruRowCache, HitRateAndClear)
{
    LruRowCache c(4 * 128, 128);
    c.insert(1);
    c.lookup(1);
    c.lookup(2);
    EXPECT_NEAR(c.hitRate(), 0.5, 1e-12);
    c.clear();
    EXPECT_EQ(c.residentRows(), 0u);
    EXPECT_EQ(c.hits(), 0u);
}

TEST(LruRowCache, PowerLawReuseBeatsColdStream)
{
    // Hub rows re-referenced often should mostly hit; a cold scan
    // should mostly miss. This is the behaviour GAMMA's FiberCache
    // exhibits on GCN workloads.
    LruRowCache c(64 * 128, 128);
    for (int round = 0; round < 50; ++round)
        for (NodeId hub = 0; hub < 32; ++hub) {
            if (!c.lookup(hub))
                c.insert(hub);
        }
    double hubRate = c.hitRate();
    EXPECT_GT(hubRate, 0.9);

    LruRowCache cold(64 * 128, 128);
    for (NodeId v = 0; v < 10000; ++v) {
        if (!cold.lookup(v))
            cold.insert(v);
    }
    EXPECT_LT(cold.hitRate(), 0.01);
}

} // namespace
} // namespace grow::mem
