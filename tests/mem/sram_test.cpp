#include <gtest/gtest.h>

#include "mem/sram.hpp"

namespace grow::mem {
namespace {

TEST(SramBuffer, CountsAccesses)
{
    SramBuffer b("buf", 1024);
    b.read(8);
    b.read(16);
    b.write(64);
    EXPECT_EQ(b.readAccesses(), 2u);
    EXPECT_EQ(b.writeAccesses(), 1u);
    EXPECT_EQ(b.accesses(), 3u);
    EXPECT_EQ(b.bytesRead(), 24u);
    EXPECT_EQ(b.bytesWritten(), 64u);
}

TEST(SramBuffer, ClearStats)
{
    SramBuffer b("buf", 1024);
    b.read(8);
    b.clearStats();
    EXPECT_EQ(b.accesses(), 0u);
    EXPECT_EQ(b.bytesRead(), 0u);
}

TEST(SramBuffer, NameAndCapacity)
{
    SramBuffer b("iBufSparse", 12 * 1024);
    EXPECT_EQ(b.name(), "iBufSparse");
    EXPECT_EQ(b.capacity(), 12u * 1024);
}

TEST(SramBuffer, ZeroCapacityRejected)
{
    EXPECT_ANY_THROW(SramBuffer("x", 0));
}

} // namespace
} // namespace grow::mem
