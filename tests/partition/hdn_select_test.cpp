#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/degree_reorder.hpp"
#include "partition/hdn_select.hpp"

namespace grow::partition {
namespace {

TEST(HdnSelect, GlobalTopNByDegree)
{
    // Star graph: hub 0 has degree 4, leaves degree 1.
    auto g = graph::Graph::fromEdges(
        5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
    auto top = selectGlobalHdn(g, 2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0], 0u);
}

TEST(HdnSelect, GlobalListCappedBySize)
{
    auto g = graph::generateGrid(3, 3);
    auto top = selectGlobalHdn(g, 100);
    EXPECT_EQ(top.size(), 9u);
}

TEST(HdnSelect, PerClusterUsesIntraDegree)
{
    // Two clusters {0,1,2} and {3,4,5}. Node 2 has many *inter*-cluster
    // edges but few intra; node 0 is the intra-hub of cluster 0.
    auto g = graph::Graph::fromEdges(6, {{0, 1},
                                         {0, 2},
                                         {1, 2},
                                         {2, 3},
                                         {2, 4},
                                         {2, 5},
                                         {3, 4},
                                         {3, 5},
                                         {4, 5}});
    Clustering c;
    c.clusterStart = {0, 3, 6};
    auto lists = selectHdnPerCluster(g, c, 1);
    ASSERT_EQ(lists.size(), 2u);
    ASSERT_EQ(lists[0].size(), 1u);
    // Intra degrees in cluster 0: node0=2, node1=2, node2=2 -> tie
    // broken by ID => 0. In cluster 1 all have intra degree 2 + node3
    // etc.; the point is the chosen node is *inside* the cluster.
    EXPECT_LT(lists[0][0], 3u);
    EXPECT_GE(lists[1][0], 3u);
}

TEST(HdnSelect, ListsSortedByIntraDegree)
{
    graph::DcSbmParams p;
    p.nodes = 600;
    p.avgDegree = 10.0;
    p.communities = 3;
    p.seed = 7;
    auto g = graph::generateDcSbm(p);
    Clustering c;
    c.clusterStart = {0, 200, 400, 600};
    auto lists = selectHdnPerCluster(g, c, 50);
    for (uint32_t cl = 0; cl < 3; ++cl) {
        ASSERT_EQ(lists[cl].size(), 50u);
        auto intra = [&](NodeId v) {
            uint32_t d = 0;
            for (NodeId nb : g.neighbors(v))
                d += nb >= c.clusterStart[cl] &&
                     nb < c.clusterStart[cl + 1];
            return d;
        };
        for (size_t i = 1; i < lists[cl].size(); ++i)
            EXPECT_GE(intra(lists[cl][i - 1]), intra(lists[cl][i]));
        for (NodeId v : lists[cl]) {
            EXPECT_GE(v, c.clusterStart[cl]);
            EXPECT_LT(v, c.clusterStart[cl + 1]);
        }
    }
}

TEST(HdnSelect, TopNLargerThanCluster)
{
    auto g = graph::generateGrid(4, 2);
    Clustering c;
    c.clusterStart = {0, 4, 8};
    auto lists = selectHdnPerCluster(g, c, 1000);
    EXPECT_EQ(lists[0].size(), 4u);
    EXPECT_EQ(lists[1].size(), 4u);
}

TEST(DegreeReorder, SortsByDegreeDescending)
{
    auto g = graph::Graph::fromEdges(
        5, {{0, 1}, {0, 2}, {0, 3}, {1, 2}});
    auto r = degreeSortRelabel(g);
    // Node 0 (deg 3) first, then 1/2 (deg 2), then 3 (deg 1), 4 (deg 0).
    EXPECT_EQ(r.newToOld[0], 0u);
    EXPECT_EQ(g.degree(r.newToOld[4]), 0u);
    for (size_t i = 1; i < r.newToOld.size(); ++i)
        EXPECT_GE(g.degree(r.newToOld[i - 1]),
                  g.degree(r.newToOld[i]));
    EXPECT_EQ(r.clustering.numClusters(), 1u);
}

} // namespace
} // namespace grow::partition
