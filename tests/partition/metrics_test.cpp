#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "partition/metrics.hpp"
#include "partition/multilevel.hpp"

namespace grow::partition {
namespace {

/** A CsrView over caller-owned offset/adjacency arrays. */
graph::CsrView
viewOf(const std::vector<uint64_t> &offsets,
       const std::vector<NodeId> &adjacency)
{
    graph::CsrView v;
    v.offsets = offsets;
    v.adjacency = adjacency;
    return v;
}

// Regression: evaluatePartition must not count self loops or
// duplicated arcs toward the edge cut. Views built straight from raw
// edge lists (dataset=file: without tools/graph_convert cleanup) can
// carry both; a self loop cannot cross a part boundary and a
// duplicated arc is the same edge, so the cut of the dirty view must
// equal the cut of its deduplicated form.
TEST(PartitionMetrics, SelfLoopsAndDuplicateArcsDoNotInflateCut)
{
    // Path 0-1 | 2-3 with the single cut edge (0,2).
    const std::vector<uint64_t> cleanOff = {0, 2, 3, 5, 6};
    const std::vector<NodeId> cleanAdj = {1, 2, 0, 0, 3, 2};

    // Same graph with a self loop at 0 and 3 (twice), the cut edge
    // (0,2) duplicated in both directions and the intra edge (0,1)
    // duplicated in one. Rows stay sorted (CsrView invariant).
    const std::vector<uint64_t> dirtyOff = {0, 6, 8, 11, 14};
    const std::vector<NodeId> dirtyAdj = {0, 1, 1, 2, 2, 2,  // row 0
                                          0, 0,              // row 1
                                          0, 0, 3,           // row 2
                                          2, 3, 3};          // row 3

    PartitionResult parts;
    parts.numParts = 2;
    parts.assignment = {0, 0, 1, 1};

    const auto clean = evaluatePartition(viewOf(cleanOff, cleanAdj), parts);
    const auto dirty = evaluatePartition(viewOf(dirtyOff, dirtyAdj), parts);

    EXPECT_EQ(clean.cutEdges, 1u);
    EXPECT_EQ(dirty.cutEdges, clean.cutEdges);
    EXPECT_EQ(dirty.nonEmptyParts, 2u);
    EXPECT_DOUBLE_EQ(dirty.balance, clean.balance);
}

// A graph of only self loops has no cut at all, whatever the split.
TEST(PartitionMetrics, AllSelfLoopsHaveZeroCut)
{
    const std::vector<uint64_t> offsets = {0, 1, 2, 3};
    const std::vector<NodeId> adjacency = {0, 1, 2};
    PartitionResult parts;
    parts.numParts = 3;
    parts.assignment = {0, 1, 2};
    const auto q = evaluatePartition(viewOf(offsets, adjacency), parts);
    EXPECT_EQ(q.cutEdges, 0u);
    EXPECT_EQ(q.nonEmptyParts, 3u);
}

} // namespace
} // namespace grow::partition
