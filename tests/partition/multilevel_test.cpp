#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/metrics.hpp"
#include "partition/multilevel.hpp"

namespace grow::partition {
namespace {

TEST(Multilevel, SinglePartTrivial)
{
    auto g = graph::generateGrid(4, 4);
    PartitionConfig c;
    c.numParts = 1;
    auto r = MultilevelPartitioner(c).partition(g);
    EXPECT_EQ(r.numParts, 1u);
    for (uint32_t p : r.assignment)
        EXPECT_EQ(p, 0u);
}

TEST(Multilevel, GridBisectionIsBalancedAndLowCut)
{
    auto g = graph::generateGrid(16, 16);
    PartitionConfig c;
    c.numParts = 2;
    c.seed = 5;
    auto r = MultilevelPartitioner(c).partition(g);
    auto q = evaluatePartition(g, r);
    EXPECT_EQ(q.nonEmptyParts, 2u);
    EXPECT_LT(q.balance, 1.15);
    // The optimal bisection of a 16x16 grid cuts 16 edges; we allow a
    // generous factor but stay far below random (~240 cut edges).
    EXPECT_LT(q.cutEdges, 64u);
}

TEST(Multilevel, RecoversPlantedCommunities)
{
    graph::DcSbmParams p;
    p.nodes = 2000;
    p.avgDegree = 16.0;
    p.communities = 4;
    p.intraFraction = 0.9;
    p.seed = 21;
    std::vector<uint32_t> planted;
    auto g = graph::generateDcSbm(p, planted);

    PartitionConfig c;
    c.numParts = 4;
    c.seed = 9;
    auto r = MultilevelPartitioner(c).partition(g);
    auto q = evaluatePartition(g, r);

    PartitionResult ref;
    ref.numParts = 4;
    ref.assignment = planted;
    auto qp = evaluatePartition(g, ref);

    // Within 85% of the planted locality, and far above random (1/4).
    EXPECT_GT(q.intraArcFraction, 0.85 * qp.intraArcFraction);
    EXPECT_GT(q.intraArcFraction, 0.5);
}

TEST(Multilevel, BeatsRandomPartition)
{
    auto g = graph::generateChungLu(3000, 10.0, 2.3, 31);
    PartitionConfig c;
    c.numParts = 8;
    auto smart = evaluatePartition(
        g, MultilevelPartitioner(c).partition(g));
    auto random = evaluatePartition(g, randomPartition(3000, 8, 1));
    EXPECT_GT(smart.intraArcFraction, random.intraArcFraction);
}

TEST(Multilevel, BalanceBoundRespected)
{
    graph::DcSbmParams p;
    p.nodes = 5000;
    p.avgDegree = 12.0;
    p.communities = 10;
    p.seed = 77;
    auto g = graph::generateDcSbm(p);
    PartitionConfig c;
    c.numParts = 10;
    c.imbalance = 1.10;
    auto r = MultilevelPartitioner(c).partition(g);
    auto q = evaluatePartition(g, r);
    EXPECT_LE(q.balance, 1.13); // small slack for integer granularity
    EXPECT_EQ(q.nonEmptyParts, 10u);
}

TEST(Multilevel, DeterministicForSeed)
{
    auto g = graph::generateChungLu(800, 8.0, 2.3, 5);
    PartitionConfig c;
    c.numParts = 6;
    c.seed = 33;
    auto a = MultilevelPartitioner(c).partition(g);
    auto b = MultilevelPartitioner(c).partition(g);
    EXPECT_EQ(a.assignment, b.assignment);
}

TEST(Multilevel, MorePartsThanNodesClamped)
{
    auto g = graph::generateGrid(3, 2);
    PartitionConfig c;
    c.numParts = 100;
    auto r = MultilevelPartitioner(c).partition(g);
    EXPECT_LE(r.numParts, 6u);
}

TEST(ContiguousPartition, EqualRanges)
{
    auto r = contiguousPartition(10, 2);
    EXPECT_EQ(r.assignment[0], 0u);
    EXPECT_EQ(r.assignment[4], 0u);
    EXPECT_EQ(r.assignment[5], 1u);
    EXPECT_EQ(r.assignment[9], 1u);
}

TEST(RandomPartition, CoversAllParts)
{
    auto r = randomPartition(1000, 7, 3);
    std::vector<int> seen(7, 0);
    for (uint32_t p : r.assignment) {
        ASSERT_LT(p, 7u);
        seen[p] = 1;
    }
    for (int s : seen)
        EXPECT_EQ(s, 1);
}

/** Part-count sweep on a community graph: locality degrades gracefully
 *  and balance holds for any k. */
class PartSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(PartSweep, QualityInvariants)
{
    uint32_t k = GetParam();
    graph::DcSbmParams p;
    p.nodes = 2400;
    p.avgDegree = 10.0;
    p.communities = 12;
    p.seed = 101;
    auto g = graph::generateDcSbm(p);
    PartitionConfig c;
    c.numParts = k;
    auto r = MultilevelPartitioner(c).partition(g);
    auto q = evaluatePartition(g, r);
    EXPECT_EQ(q.nonEmptyParts, k);
    EXPECT_LE(q.balance, 1.2);
    auto rq = evaluatePartition(g, randomPartition(2400, k, 1));
    EXPECT_GT(q.intraArcFraction, rq.intraArcFraction);
}

INSTANTIATE_TEST_SUITE_P(PartCounts, PartSweep,
                         ::testing::Values(2u, 3u, 6u, 12u, 24u));

} // namespace
} // namespace grow::partition
