#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "partition/multilevel.hpp"
#include "partition/relabel.hpp"

namespace grow::partition {
namespace {

TEST(Relabel, ClustersContiguousAndComplete)
{
    PartitionResult parts;
    parts.numParts = 3;
    parts.assignment = {2, 0, 1, 0, 2, 1, 0};
    auto r = relabelByPartition(7, parts);

    EXPECT_EQ(r.clustering.numClusters(), 3u);
    EXPECT_EQ(r.clustering.clusterStart.front(), 0u);
    EXPECT_EQ(r.clustering.clusterStart.back(), 7u);

    // newToOld is a permutation.
    auto perm = r.newToOld;
    std::sort(perm.begin(), perm.end());
    for (NodeId i = 0; i < 7; ++i)
        EXPECT_EQ(perm[i], i);

    // All nodes inside a cluster range share the original part.
    for (uint32_t c = 0; c < 3; ++c) {
        uint32_t lo = r.clustering.clusterStart[c];
        uint32_t hi = r.clustering.clusterStart[c + 1];
        uint32_t part = parts.assignment[r.newToOld[lo]];
        for (uint32_t i = lo; i < hi; ++i)
            EXPECT_EQ(parts.assignment[r.newToOld[i]], part);
    }
}

TEST(Relabel, PreservesRelativeOrderWithinCluster)
{
    PartitionResult parts;
    parts.numParts = 2;
    parts.assignment = {0, 1, 0, 1, 0};
    auto r = relabelByPartition(5, parts);
    // Cluster 0 members keep original order 0, 2, 4.
    EXPECT_EQ(r.newToOld[0], 0u);
    EXPECT_EQ(r.newToOld[1], 2u);
    EXPECT_EQ(r.newToOld[2], 4u);
}

TEST(Relabel, DropsEmptyParts)
{
    PartitionResult parts;
    parts.numParts = 5;
    parts.assignment = {4, 4, 0};
    auto r = relabelByPartition(3, parts);
    EXPECT_EQ(r.clustering.numClusters(), 2u);
}

TEST(Relabel, ClusterOfLookup)
{
    Clustering c;
    c.clusterStart = {0, 3, 7, 10};
    EXPECT_EQ(c.clusterOf(0), 0u);
    EXPECT_EQ(c.clusterOf(2), 0u);
    EXPECT_EQ(c.clusterOf(3), 1u);
    EXPECT_EQ(c.clusterOf(6), 1u);
    EXPECT_EQ(c.clusterOf(9), 2u);
    EXPECT_EQ(c.clusterSize(1), 4u);
}

TEST(Relabel, IdentityRelabel)
{
    auto r = identityRelabel(5);
    EXPECT_EQ(r.clustering.numClusters(), 1u);
    for (NodeId i = 0; i < 5; ++i)
        EXPECT_EQ(r.newToOld[i], i);
}

TEST(Relabel, DiagonalizationEffect)
{
    // The Fig. 13/14 effect: after cluster-contiguous relabeling, the
    // fraction of adjacency non-zeros falling inside diagonal blocks
    // equals the partition's intra fraction, which far exceeds the
    // unordered layout's block-diagonal mass.
    graph::DcSbmParams p;
    p.nodes = 1200;
    p.avgDegree = 12.0;
    p.communities = 6;
    p.intraFraction = 0.9;
    p.seed = 55;
    auto g = graph::generateDcSbm(p);

    PartitionConfig pc;
    pc.numParts = 6;
    auto parts = MultilevelPartitioner(pc).partition(g);
    auto r = relabelByPartition(g.numNodes(), parts);
    auto rg = g.relabeled(r.newToOld);

    auto blockMass = [&](const graph::Graph &gg) {
        uint64_t intra = 0;
        for (NodeId v = 0; v < gg.numNodes(); ++v) {
            uint32_t cv = r.clustering.clusterOf(v);
            for (NodeId nb : gg.neighbors(v))
                intra += r.clustering.clusterOf(nb) == cv;
        }
        return static_cast<double>(intra) / gg.numArcs();
    };
    // On the relabeled graph, the cluster ranges capture the planted
    // community mass.
    EXPECT_GT(blockMass(rg), 0.6);
}

TEST(SplitOversized, OversizedClustersAreChunkedEvenly)
{
    Clustering c;
    c.clusterStart = {0, 1000, 1400}; // sizes 1000, 400
    auto s = splitOversizedClusters(c, 600);
    // 1000 -> two 500-node chunks; 400 stays whole.
    EXPECT_EQ(s.clusterStart, (std::vector<uint32_t>{0, 500, 1000, 1400}));
    for (uint32_t i = 0; i < s.numClusters(); ++i)
        EXPECT_LE(s.clusterSize(i), 600u);
}

TEST(SplitOversized, BoundaryCases)
{
    Clustering c;
    c.clusterStart = {0, 600, 1201, 1208};
    auto s = splitOversizedClusters(c, 600);
    // Exactly at the bound: untouched. One over: split ~evenly.
    EXPECT_EQ(s.clusterStart[1], 600u);
    EXPECT_EQ(s.numClusters(), 4u);
    EXPECT_EQ(s.clusterSize(1), 301u);
    EXPECT_EQ(s.clusterSize(2), 300u);
    EXPECT_EQ(s.clusterSize(3), 7u);
    // Node coverage and ordering are preserved.
    EXPECT_EQ(s.clusterStart.front(), 0u);
    EXPECT_EQ(s.clusterStart.back(), c.clusterStart.back());
    for (size_t i = 1; i < s.clusterStart.size(); ++i)
        EXPECT_GT(s.clusterStart[i], s.clusterStart[i - 1]);
}

TEST(SplitOversized, NoOpWhenAllClustersFit)
{
    Clustering c;
    c.clusterStart = {0, 10, 30, 55};
    auto s = splitOversizedClusters(c, 100);
    EXPECT_EQ(s.clusterStart, c.clusterStart);
}

} // namespace
} // namespace grow::partition
