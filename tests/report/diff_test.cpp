/**
 * @file
 * Perf-trajectory differ: canonical record join keys, drift
 * classification against the gate units and tolerance, and the
 * added/removed record accounting CI relies on.
 */
#include <gtest/gtest.h>

#include "report/diff.hpp"
#include <cmath>
#include <sstream>

#include "report/json.hpp"
#include "report/report.hpp"
#include "report/sinks.hpp"

namespace grow::report {
namespace {

JsonValue
parse(const std::string &text)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(parseJson(text, v, &error)) << error;
    return v;
}

/** A minimal schema-valid report with the given records payload. */
std::string
reportWith(const std::string &records)
{
    return R"({"schema":1,"generator":"grow-bench","bench":"t",)"
           R"("revision":"r","records":[)" +
           records + "]}";
}

const char *kRecA =
    R"({"bench":"fig20","table":"fig20","dataset":"yelp",)"
    R"("engine":"grow","metric":"cycles","unit":"cycles","value":1000})";

TEST(ReportDiff, JoinKeyCoversBenchTableDimsAndMetric)
{
    auto root = parse(reportWith(
        R"({"bench":"b","table":"t","dataset":"d","engine":"e",)"
        R"("model":"gat","depth":3,"dims":{"cap":"512"},)"
        R"("metric":"cycles","value":1})"));
    const auto &rec = root.find("records")->arr[0];
    EXPECT_EQ(recordJoinKey(rec),
              "b|t|dataset=d|engine=e|model=gat|depth=3|cap=512|cycles");
}

TEST(ReportDiff, IdenticalReportsShowNoDrift)
{
    auto base = parse(reportWith(kRecA));
    auto curr = parse(reportWith(kRecA));
    auto result = diffReports(base, curr);
    EXPECT_EQ(result.joined, 1u);
    EXPECT_TRUE(result.drifted.empty());
    EXPECT_EQ(result.regressions, 0u);
    EXPECT_TRUE(result.onlyBase.empty());
    EXPECT_TRUE(result.onlyCurrent.empty());
}

TEST(ReportDiff, GatedDriftBeyondToleranceIsARegression)
{
    auto base = parse(reportWith(kRecA));
    auto curr = parse(reportWith(
        R"({"bench":"fig20","table":"fig20","dataset":"yelp",)"
        R"("engine":"grow","metric":"cycles","unit":"cycles",)"
        R"("value":1100})"));
    DiffOptions opt;
    opt.relTolerance = 0.05;
    auto result = diffReports(base, curr, opt);
    ASSERT_EQ(result.drifted.size(), 1u);
    EXPECT_EQ(result.regressions, 1u);
    EXPECT_TRUE(result.drifted[0].regression);
    EXPECT_DOUBLE_EQ(result.drifted[0].relDelta, 0.1);
    EXPECT_DOUBLE_EQ(result.drifted[0].baseValue, 1000.0);
    EXPECT_DOUBLE_EQ(result.drifted[0].currValue, 1100.0);

    // A looser tolerance downgrades the same delta to plain drift.
    opt.relTolerance = 0.2;
    auto relaxed = diffReports(base, curr, opt);
    ASSERT_EQ(relaxed.drifted.size(), 1u);
    EXPECT_EQ(relaxed.regressions, 0u);
    EXPECT_FALSE(relaxed.drifted[0].regression);
}

TEST(ReportDiff, ImprovementsBeyondToleranceAlsoTripTheGate)
{
    // The simulator is deterministic: an "improvement" that nobody
    // made is drift too. Both directions gate.
    auto base = parse(reportWith(kRecA));
    auto curr = parse(reportWith(
        R"({"bench":"fig20","table":"fig20","dataset":"yelp",)"
        R"("engine":"grow","metric":"cycles","unit":"cycles",)"
        R"("value":800})"));
    DiffOptions opt;
    opt.relTolerance = 0.1;
    auto result = diffReports(base, curr, opt);
    EXPECT_EQ(result.regressions, 1u);
}

TEST(ReportDiff, UngatedUnitsNeverFailTheGate)
{
    auto base = parse(reportWith(
        R"({"bench":"b","table":"t","metric":"speedup","unit":"x",)"
        R"("value":2.5})"));
    auto curr = parse(reportWith(
        R"({"bench":"b","table":"t","metric":"speedup","unit":"x",)"
        R"("value":1.0})"));
    auto result = diffReports(base, curr); // gate = cycles,bytes
    ASSERT_EQ(result.drifted.size(), 1u);
    EXPECT_EQ(result.regressions, 0u);
    EXPECT_FALSE(result.drifted[0].regression);
}

TEST(ReportDiff, AddedAndRemovedRecordsAreInformational)
{
    auto base = parse(reportWith(kRecA));
    auto curr = parse(reportWith(
        std::string(kRecA) + "," +
        R"({"bench":"fig22","table":"fig22","dataset":"yelp",)"
        R"("engine":"grow","metric":"energy","unit":"uJ","value":5})"));
    auto result = diffReports(base, curr);
    EXPECT_EQ(result.joined, 1u);
    EXPECT_EQ(result.regressions, 0u);
    EXPECT_TRUE(result.onlyBase.empty());
    ASSERT_EQ(result.onlyCurrent.size(), 1u);
    EXPECT_NE(result.onlyCurrent[0].find("fig22"), std::string::npos);
}

TEST(ReportDiff, TextChangesAreReportedButNotGated)
{
    auto base = parse(reportWith(
        R"({"bench":"b","table":"t","metric":"status","text":"ok"})"));
    auto curr = parse(reportWith(
        R"({"bench":"b","table":"t","metric":"status","text":"meh"})"));
    auto result = diffReports(base, curr);
    ASSERT_EQ(result.textChanges.size(), 1u);
    EXPECT_EQ(result.textChanges[0].baseText, "ok");
    EXPECT_EQ(result.textChanges[0].currText, "meh");
    EXPECT_EQ(result.regressions, 0u);
}

TEST(ReportDiff, GatedMetricLosingItsNumericValueTripsTheGate)
{
    // A bench bug that turns a gated numeric metric into a text cell
    // must not silently retire the metric from the gate.
    auto base = parse(reportWith(kRecA));
    auto curr = parse(reportWith(
        R"({"bench":"fig20","table":"fig20","dataset":"yelp",)"
        R"("engine":"grow","metric":"cycles","unit":"cycles",)"
        R"("text":"n/a"})"));
    DiffOptions opt;
    opt.relTolerance = 1e9;
    auto result = diffReports(base, curr, opt);
    ASSERT_EQ(result.textChanges.size(), 1u);
    EXPECT_EQ(result.regressions, 1u);
}

TEST(ReportDiff, ZeroBaselineDriftIsInfiniteAndGated)
{
    auto base = parse(reportWith(
        R"({"bench":"b","table":"t","metric":"stalls","unit":"cycles",)"
        R"("value":0})"));
    auto curr = parse(reportWith(
        R"({"bench":"b","table":"t","metric":"stalls","unit":"cycles",)"
        R"("value":7})"));
    DiffOptions opt;
    opt.relTolerance = 1e9; // even an absurd tolerance cannot excuse it
    auto result = diffReports(base, curr, opt);
    ASSERT_EQ(result.drifted.size(), 1u);
    EXPECT_TRUE(std::isinf(result.drifted[0].relDelta));
    EXPECT_EQ(result.regressions, 1u);
}

TEST(ReportDiff, WorstDriftSortsFirstAndFormats)
{
    auto base = parse(reportWith(
        R"({"bench":"b","table":"t","metric":"m1","unit":"cycles","value":100},)"
        R"({"bench":"b","table":"t","metric":"m2","unit":"cycles","value":100})"));
    auto curr = parse(reportWith(
        R"({"bench":"b","table":"t","metric":"m1","unit":"cycles","value":101},)"
        R"({"bench":"b","table":"t","metric":"m2","unit":"cycles","value":150})"));
    auto result = diffReports(base, curr);
    ASSERT_EQ(result.drifted.size(), 2u);
    EXPECT_NE(result.drifted[0].key.find("m2"), std::string::npos);
    auto text = formatDiff(result, DiffOptions{});
    EXPECT_NE(text.find("REGRESSION"), std::string::npos);
    EXPECT_NE(text.find("+50.000%"), std::string::npos);
    // max_lines truncation note
    auto truncated = formatDiff(result, DiffOptions{}, 1);
    EXPECT_NE(truncated.find("suppressed"), std::string::npos);
}

TEST(ReportDiff, FailureSummaryLineListsTopWorstRegressions)
{
    // On failure the last line names the worst gated regressions so a
    // CI log tail is enough to see *what* regressed -- even when the
    // per-metric detail lines were truncated by max_lines.
    std::string baseRecs, currRecs;
    for (int i = 1; i <= 5; ++i) {
        const std::string sep = i > 1 ? "," : "";
        baseRecs += sep +
                    R"({"bench":"b","table":"t","metric":"m)" +
                    std::to_string(i) +
                    R"(","unit":"cycles","value":100})";
        // m5 drifts worst (+50%), m1 least (+10%).
        currRecs += sep +
                    R"({"bench":"b","table":"t","metric":"m)" +
                    std::to_string(i) + R"(","unit":"cycles","value":)" +
                    std::to_string(100 + 10 * i) + "}";
    }
    auto result = diffReports(parse(reportWith(baseRecs)),
                              parse(reportWith(currRecs)));
    EXPECT_EQ(result.regressions, 5u);

    auto text = formatDiff(result, DiffOptions{}, 1);
    const size_t fail = text.find("report_diff: FAIL; worst drift:");
    ASSERT_NE(fail, std::string::npos);
    const std::string summary = text.substr(fail);
    // Top 3 by |relDelta|, worst first, with the remainder counted.
    EXPECT_NE(summary.find("m5"), std::string::npos);
    EXPECT_NE(summary.find("m4"), std::string::npos);
    EXPECT_NE(summary.find("m3"), std::string::npos);
    EXPECT_EQ(summary.find("m2"), std::string::npos);
    EXPECT_NE(summary.find("+50.000%"), std::string::npos);
    EXPECT_NE(summary.find("+2 more"), std::string::npos);
    EXPECT_LT(summary.find("m5"), summary.find("m4"));

    // A clean diff never emits the failure line.
    auto clean = diffReports(parse(reportWith(baseRecs)),
                             parse(reportWith(baseRecs)));
    EXPECT_EQ(formatDiff(clean, DiffOptions{}).find("FAIL"),
              std::string::npos);
}

const char *kSimSpeedBase =
    R"({"bench":"zoo","table":"sim_speed","dataset":"cora",)"
    R"("engine":"grow","metric":"rows_per_sec","unit":"rows/s",)"
    R"("value":1000})";
const char *kSimSpeedDrifted =
    R"({"bench":"zoo","table":"sim_speed","dataset":"cora",)"
    R"("engine":"grow","metric":"rows_per_sec","unit":"rows/s",)"
    R"("value":1100})";

TEST(ReportDiff, TolOverrideGatesAUnitOutsideTheDefaultGateSet)
{
    // sim-speed units (ms, rows/s) are not in gateUnits; by default
    // their drift is informational. A tol override both sets their
    // tolerance AND opts them into the gate.
    auto base = parse(reportWith(kSimSpeedBase));
    auto curr = parse(reportWith(kSimSpeedDrifted));

    auto plain = diffReports(base, curr);
    ASSERT_EQ(plain.drifted.size(), 1u);
    EXPECT_EQ(plain.regressions, 0u);

    DiffOptions opt;
    opt.tolOverrides["rows/s"] = 0.05;
    auto gated = diffReports(base, curr, opt);
    EXPECT_EQ(gated.regressions, 1u);

    // The 10% drift passes a 15% override (the CI setting).
    opt.tolOverrides["rows/s"] = 0.15;
    auto loose = diffReports(base, curr, opt);
    ASSERT_EQ(loose.drifted.size(), 1u);
    EXPECT_EQ(loose.regressions, 0u);
}

TEST(ReportDiff, MetricNameOverrideBeatsUnitOverride)
{
    auto base = parse(reportWith(kSimSpeedBase));
    auto curr = parse(reportWith(kSimSpeedDrifted));

    DiffOptions opt;
    opt.tolOverrides["rows/s"] = 0.05;       // would gate the 10% drift
    opt.tolOverrides["rows_per_sec"] = 0.2;  // metric name wins
    auto result = diffReports(base, curr, opt);
    EXPECT_EQ(result.regressions, 0u);

    opt.tolOverrides["rows/s"] = 0.5;
    opt.tolOverrides["rows_per_sec"] = 0.05; // tight metric override
    auto tight = diffReports(base, curr, opt);
    EXPECT_EQ(tight.regressions, 1u);
}

TEST(ReportDiff, TolOverrideCanLoosenAGatedUnit)
{
    auto base = parse(reportWith(kRecA));
    auto curr = parse(reportWith(
        R"({"bench":"fig20","table":"fig20","dataset":"yelp",)"
        R"("engine":"grow","metric":"cycles","unit":"cycles",)"
        R"("value":1050})"));
    auto strict = diffReports(base, curr); // 5% > default 2%
    EXPECT_EQ(strict.regressions, 1u);

    DiffOptions opt;
    opt.tolOverrides["cycles"] = 0.1;
    auto loose = diffReports(base, curr, opt);
    ASSERT_EQ(loose.drifted.size(), 1u);
    EXPECT_EQ(loose.regressions, 0u);

    // The header advertises active overrides so a CI log shows what
    // tolerance actually applied.
    auto text = formatDiff(loose, opt);
    EXPECT_NE(text.find("override"), std::string::npos);
    EXPECT_NE(text.find("cycles=0.1"), std::string::npos);
}

TEST(ReportDiff, OverriddenMetricLosingItsValueTripsTheGate)
{
    // Mirrors GatedMetricLosingItsNumericValueTripsTheGate for a
    // metric gated only through an override.
    auto base = parse(reportWith(kSimSpeedBase));
    auto curr = parse(reportWith(
        R"({"bench":"zoo","table":"sim_speed","dataset":"cora",)"
        R"("engine":"grow","metric":"rows_per_sec","unit":"rows/s",)"
        R"("text":"n/a"})"));
    auto plain = diffReports(base, curr);
    EXPECT_EQ(plain.regressions, 0u);

    DiffOptions opt;
    opt.tolOverrides["rows/s"] = 0.15;
    auto gated = diffReports(base, curr, opt);
    EXPECT_EQ(gated.regressions, 1u);
}

/** Render @p report through the JSON sink and parse it back. */
JsonValue
roundTrip(const Report &report)
{
    std::ostringstream os;
    JsonSink().emit(report, os);
    JsonValue root = parse(os.str());
    std::vector<std::string> errors;
    EXPECT_TRUE(validateReportJson(root, errors))
        << (errors.empty() ? "" : errors.front());
    return root;
}

TEST(ReportDiff, SimSpeedRecordsSurviveTheJsonRoundTrip)
{
    // The profile=1 table as BenchContext::emitSimSpeed declares it:
    // built through the report API, rendered to JSON, validated, and
    // joined by the differ under the CI tolerance overrides.
    auto makeReport = [](double wall_ms, double rows_per_sec) {
        Report rep;
        rep.meta().bench = "model_zoo";
        rep.meta().revision = "test";
        auto t = rep.table("sim_speed", "Simulator speed");
        t.col("dataset", "dataset")
            .col("engine", "engine")
            .col("wall_ms", "wall ms", "ms")
            .col("rows_per_sec", "sim rows/s", "rows/s");
        t.row({.dataset = "cora", .engine = "grow"})
            .add(textCell("cora"))
            .add(textCell("grow"))
            .add(real(wall_ms, 3, "ms"))
            .add(real(rows_per_sec, 1, "rows/s"));
        return rep;
    };

    auto base = roundTrip(makeReport(100.0, 5000.0));
    auto curr = roundTrip(makeReport(110.0, 4545.5));

    DiffOptions opt;
    opt.tolOverrides["ms"] = 0.15;
    opt.tolOverrides["rows/s"] = 0.15;
    auto result = diffReports(base, curr, opt);
    // Identity cells (dataset, engine) are not records; both numeric
    // metrics join and the 10% drift passes the 15% override.
    EXPECT_EQ(result.joined, 2u);
    EXPECT_EQ(result.drifted.size(), 2u);
    EXPECT_EQ(result.regressions, 0u);
    EXPECT_TRUE(result.onlyBase.empty());
    EXPECT_TRUE(result.onlyCurrent.empty());

    opt.tolOverrides["ms"] = 0.05;
    auto tight = diffReports(base, curr, opt);
    EXPECT_EQ(tight.regressions, 1u);
}

} // namespace
} // namespace grow::report
