/**
 * @file
 * Perf-trajectory differ: canonical record join keys, drift
 * classification against the gate units and tolerance, and the
 * added/removed record accounting CI relies on.
 */
#include <gtest/gtest.h>

#include "report/diff.hpp"
#include <cmath>

#include "report/json.hpp"

namespace grow::report {
namespace {

JsonValue
parse(const std::string &text)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(parseJson(text, v, &error)) << error;
    return v;
}

/** A minimal schema-valid report with the given records payload. */
std::string
reportWith(const std::string &records)
{
    return R"({"schema":1,"generator":"grow-bench","bench":"t",)"
           R"("revision":"r","records":[)" +
           records + "]}";
}

const char *kRecA =
    R"({"bench":"fig20","table":"fig20","dataset":"yelp",)"
    R"("engine":"grow","metric":"cycles","unit":"cycles","value":1000})";

TEST(ReportDiff, JoinKeyCoversBenchTableDimsAndMetric)
{
    auto root = parse(reportWith(
        R"({"bench":"b","table":"t","dataset":"d","engine":"e",)"
        R"("model":"gat","depth":3,"dims":{"cap":"512"},)"
        R"("metric":"cycles","value":1})"));
    const auto &rec = root.find("records")->arr[0];
    EXPECT_EQ(recordJoinKey(rec),
              "b|t|dataset=d|engine=e|model=gat|depth=3|cap=512|cycles");
}

TEST(ReportDiff, IdenticalReportsShowNoDrift)
{
    auto base = parse(reportWith(kRecA));
    auto curr = parse(reportWith(kRecA));
    auto result = diffReports(base, curr);
    EXPECT_EQ(result.joined, 1u);
    EXPECT_TRUE(result.drifted.empty());
    EXPECT_EQ(result.regressions, 0u);
    EXPECT_TRUE(result.onlyBase.empty());
    EXPECT_TRUE(result.onlyCurrent.empty());
}

TEST(ReportDiff, GatedDriftBeyondToleranceIsARegression)
{
    auto base = parse(reportWith(kRecA));
    auto curr = parse(reportWith(
        R"({"bench":"fig20","table":"fig20","dataset":"yelp",)"
        R"("engine":"grow","metric":"cycles","unit":"cycles",)"
        R"("value":1100})"));
    DiffOptions opt;
    opt.relTolerance = 0.05;
    auto result = diffReports(base, curr, opt);
    ASSERT_EQ(result.drifted.size(), 1u);
    EXPECT_EQ(result.regressions, 1u);
    EXPECT_TRUE(result.drifted[0].regression);
    EXPECT_DOUBLE_EQ(result.drifted[0].relDelta, 0.1);
    EXPECT_DOUBLE_EQ(result.drifted[0].baseValue, 1000.0);
    EXPECT_DOUBLE_EQ(result.drifted[0].currValue, 1100.0);

    // A looser tolerance downgrades the same delta to plain drift.
    opt.relTolerance = 0.2;
    auto relaxed = diffReports(base, curr, opt);
    ASSERT_EQ(relaxed.drifted.size(), 1u);
    EXPECT_EQ(relaxed.regressions, 0u);
    EXPECT_FALSE(relaxed.drifted[0].regression);
}

TEST(ReportDiff, ImprovementsBeyondToleranceAlsoTripTheGate)
{
    // The simulator is deterministic: an "improvement" that nobody
    // made is drift too. Both directions gate.
    auto base = parse(reportWith(kRecA));
    auto curr = parse(reportWith(
        R"({"bench":"fig20","table":"fig20","dataset":"yelp",)"
        R"("engine":"grow","metric":"cycles","unit":"cycles",)"
        R"("value":800})"));
    DiffOptions opt;
    opt.relTolerance = 0.1;
    auto result = diffReports(base, curr, opt);
    EXPECT_EQ(result.regressions, 1u);
}

TEST(ReportDiff, UngatedUnitsNeverFailTheGate)
{
    auto base = parse(reportWith(
        R"({"bench":"b","table":"t","metric":"speedup","unit":"x",)"
        R"("value":2.5})"));
    auto curr = parse(reportWith(
        R"({"bench":"b","table":"t","metric":"speedup","unit":"x",)"
        R"("value":1.0})"));
    auto result = diffReports(base, curr); // gate = cycles,bytes
    ASSERT_EQ(result.drifted.size(), 1u);
    EXPECT_EQ(result.regressions, 0u);
    EXPECT_FALSE(result.drifted[0].regression);
}

TEST(ReportDiff, AddedAndRemovedRecordsAreInformational)
{
    auto base = parse(reportWith(kRecA));
    auto curr = parse(reportWith(
        std::string(kRecA) + "," +
        R"({"bench":"fig22","table":"fig22","dataset":"yelp",)"
        R"("engine":"grow","metric":"energy","unit":"uJ","value":5})"));
    auto result = diffReports(base, curr);
    EXPECT_EQ(result.joined, 1u);
    EXPECT_EQ(result.regressions, 0u);
    EXPECT_TRUE(result.onlyBase.empty());
    ASSERT_EQ(result.onlyCurrent.size(), 1u);
    EXPECT_NE(result.onlyCurrent[0].find("fig22"), std::string::npos);
}

TEST(ReportDiff, TextChangesAreReportedButNotGated)
{
    auto base = parse(reportWith(
        R"({"bench":"b","table":"t","metric":"status","text":"ok"})"));
    auto curr = parse(reportWith(
        R"({"bench":"b","table":"t","metric":"status","text":"meh"})"));
    auto result = diffReports(base, curr);
    ASSERT_EQ(result.textChanges.size(), 1u);
    EXPECT_EQ(result.textChanges[0].baseText, "ok");
    EXPECT_EQ(result.textChanges[0].currText, "meh");
    EXPECT_EQ(result.regressions, 0u);
}

TEST(ReportDiff, GatedMetricLosingItsNumericValueTripsTheGate)
{
    // A bench bug that turns a gated numeric metric into a text cell
    // must not silently retire the metric from the gate.
    auto base = parse(reportWith(kRecA));
    auto curr = parse(reportWith(
        R"({"bench":"fig20","table":"fig20","dataset":"yelp",)"
        R"("engine":"grow","metric":"cycles","unit":"cycles",)"
        R"("text":"n/a"})"));
    DiffOptions opt;
    opt.relTolerance = 1e9;
    auto result = diffReports(base, curr, opt);
    ASSERT_EQ(result.textChanges.size(), 1u);
    EXPECT_EQ(result.regressions, 1u);
}

TEST(ReportDiff, ZeroBaselineDriftIsInfiniteAndGated)
{
    auto base = parse(reportWith(
        R"({"bench":"b","table":"t","metric":"stalls","unit":"cycles",)"
        R"("value":0})"));
    auto curr = parse(reportWith(
        R"({"bench":"b","table":"t","metric":"stalls","unit":"cycles",)"
        R"("value":7})"));
    DiffOptions opt;
    opt.relTolerance = 1e9; // even an absurd tolerance cannot excuse it
    auto result = diffReports(base, curr, opt);
    ASSERT_EQ(result.drifted.size(), 1u);
    EXPECT_TRUE(std::isinf(result.drifted[0].relDelta));
    EXPECT_EQ(result.regressions, 1u);
}

TEST(ReportDiff, WorstDriftSortsFirstAndFormats)
{
    auto base = parse(reportWith(
        R"({"bench":"b","table":"t","metric":"m1","unit":"cycles","value":100},)"
        R"({"bench":"b","table":"t","metric":"m2","unit":"cycles","value":100})"));
    auto curr = parse(reportWith(
        R"({"bench":"b","table":"t","metric":"m1","unit":"cycles","value":101},)"
        R"({"bench":"b","table":"t","metric":"m2","unit":"cycles","value":150})"));
    auto result = diffReports(base, curr);
    ASSERT_EQ(result.drifted.size(), 2u);
    EXPECT_NE(result.drifted[0].key.find("m2"), std::string::npos);
    auto text = formatDiff(result, DiffOptions{});
    EXPECT_NE(text.find("REGRESSION"), std::string::npos);
    EXPECT_NE(text.find("+50.000%"), std::string::npos);
    // max_lines truncation note
    auto truncated = formatDiff(result, DiffOptions{}, 1);
    EXPECT_NE(truncated.find("suppressed"), std::string::npos);
}

} // namespace
} // namespace grow::report
