/**
 * @file
 * JSON layer of the structured results API: emit -> parse -> re-emit
 * bit-identity (the property the perf trajectory relies on), schema
 * validation with version-bump detection, and parser robustness.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "report/json.hpp"
#include "report/report.hpp"
#include "report/sinks.hpp"

namespace grow::report {
namespace {

Report
sampleReport()
{
    ReportMeta meta;
    meta.bench = "fig20_speedup";
    meta.revision = "abc1234";
    meta.scale = "unit";
    meta.model = "gcn";
    Report rep(meta);
    rep.note("banner \"quoted\" line");
    auto t = rep.table("fig20a", "Figure 20(a)");
    t.col("dataset", "dataset")
        .col("gcnax_cycles", "GCNAX cycles", "cycles")
        .col("speedup_gp", "GROW (with G.P)");
    t.row({.dataset = "cora", .extra = {{"rank", "1"}}})
        .add(textCell("cora"))
        .add(count(37881, "cycles"))
        .add(ratio(1.000264054289562));
    t.row({.dataset = "yelp", .depth = 3})
        .add(textCell("yelp"))
        .add(count(1388403, "cycles"))
        .add(ratio(0.99451));
    return rep;
}

std::string
emitJson(const Report &rep)
{
    std::ostringstream os;
    JsonSink().emit(rep, os);
    return os.str();
}

TEST(ReportJson, EmitParseReEmitIsBitIdentical)
{
    const std::string first = emitJson(sampleReport());

    JsonValue root;
    std::string error;
    ASSERT_TRUE(parseJson(first, root, &error)) << error;
    Report parsed;
    ASSERT_TRUE(reportFromJson(root, parsed, &error)) << error;
    const std::string second = emitJson(parsed);
    EXPECT_EQ(first, second);

    // And once more, through the parsed-of-the-parsed document.
    JsonValue root2;
    ASSERT_TRUE(parseJson(second, root2, &error)) << error;
    Report parsed2;
    ASSERT_TRUE(reportFromJson(root2, parsed2, &error)) << error;
    EXPECT_EQ(emitJson(parsed2), second);
}

TEST(ReportJson, ParsedRecordsCarryAllFields)
{
    JsonValue root;
    ASSERT_TRUE(parseJson(emitJson(sampleReport()), root, nullptr));
    Report parsed;
    ASSERT_TRUE(reportFromJson(root, parsed, nullptr));
    const auto &records = parsed.looseRecords();
    ASSERT_EQ(records.size(), 4u);
    EXPECT_EQ(records[0].bench, "fig20_speedup");
    EXPECT_EQ(records[0].table, "fig20a");
    EXPECT_EQ(records[0].dims.dataset, "cora");
    ASSERT_EQ(records[0].dims.extra.size(), 1u);
    EXPECT_EQ(records[0].dims.extra[0].first, "rank");
    EXPECT_TRUE(records[0].hasValue);
    EXPECT_DOUBLE_EQ(records[0].value, 37881.0);
    EXPECT_EQ(records[0].text, "37,881");
    EXPECT_EQ(records[2].dims.depth, 3u);
    EXPECT_DOUBLE_EQ(records[3].value, 0.99451);
    EXPECT_EQ(parsed.meta().bench, "fig20_speedup");
    EXPECT_EQ(parsed.meta().revision, "abc1234");
}

TEST(ReportJson, ValidateAcceptsWellFormedReport)
{
    JsonValue root;
    ASSERT_TRUE(parseJson(emitJson(sampleReport()), root, nullptr));
    std::vector<std::string> errors;
    EXPECT_TRUE(validateReportJson(root, errors));
    EXPECT_TRUE(errors.empty());
}

TEST(ReportJson, ValidateDetectsSchemaVersionBump)
{
    // A report written by a build with a bumped schema must be
    // rejected by this build's tooling, with both versions named.
    std::string doc = emitJson(sampleReport());
    const std::string needle =
        "\"schema\": " + std::to_string(kReportSchemaVersion);
    const std::string bumped =
        "\"schema\": " + std::to_string(kReportSchemaVersion + 1);
    auto pos = doc.find(needle);
    ASSERT_NE(pos, std::string::npos);
    doc.replace(pos, needle.size(), bumped);

    JsonValue root;
    ASSERT_TRUE(parseJson(doc, root, nullptr));
    std::vector<std::string> errors;
    EXPECT_FALSE(validateReportJson(root, errors));
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("schema version"), std::string::npos);
    EXPECT_NE(errors[0].find(std::to_string(kReportSchemaVersion + 1)),
              std::string::npos);
}

TEST(ReportJson, ValidateReportsMissingRequiredRecordKeys)
{
    const std::string doc = R"({
      "schema": )" + std::to_string(kReportSchemaVersion) + R"(,
      "bench": "x",
      "records": [
        {"bench":"x","table":"t","metric":"m","value":1},
        {"bench":"x","table":"t","metric":"m"},
        {"bench":"x","metric":"m","value":1},
        {"table":"t","metric":"m","text":"ok"}
      ]
    })";
    JsonValue root;
    std::string error;
    ASSERT_TRUE(parseJson(doc, root, &error)) << error;
    std::vector<std::string> errors;
    EXPECT_FALSE(validateReportJson(root, errors));
    // record 1: no value/text; record 2: no table; record 3: no bench.
    ASSERT_EQ(errors.size(), 3u);
    EXPECT_NE(errors[0].find("records[1]"), std::string::npos);
    EXPECT_NE(errors[1].find("'table'"), std::string::npos);
    EXPECT_NE(errors[2].find("'bench'"), std::string::npos);
}

TEST(ReportJson, ValidateRejectsMalformedTopLevel)
{
    for (const char *doc :
         {"[]", "{\"schema\": 1}", "{\"bench\": \"x\", \"records\": []}",
          "{\"schema\": 1, \"bench\": \"x\", \"records\": 3}"}) {
        JsonValue root;
        ASSERT_TRUE(parseJson(doc, root, nullptr)) << doc;
        std::vector<std::string> errors;
        EXPECT_FALSE(validateReportJson(root, errors)) << doc;
        EXPECT_FALSE(errors.empty()) << doc;
    }
}

TEST(ReportJson, ParserHandlesEscapesAndRejectsGarbage)
{
    JsonValue v;
    std::string error;
    ASSERT_TRUE(parseJson(R"({"a":"q\"\\\nA","b":[1,-2.5e3,true,
                             null]})",
                          v, &error))
        << error;
    EXPECT_EQ(v.find("a")->str, "q\"\\\nA");
    ASSERT_EQ(v.find("b")->arr.size(), 4u);
    EXPECT_DOUBLE_EQ(v.find("b")->arr[1].number, -2500.0);
    EXPECT_TRUE(v.find("b")->arr[2].boolean);

    for (const char *bad :
         {"", "{", "{\"a\":}", "[1,]", "{\"a\":1} trailing", "nul",
          "\"unterminated", "{\"a\":1e}", "{'a':1}"}) {
        JsonValue out;
        EXPECT_FALSE(parseJson(bad, out, &error)) << bad;
    }
}

TEST(ReportJson, NumbersUseShortestRoundTripForm)
{
    EXPECT_EQ(jsonNumber(37881.0), "37881");
    EXPECT_EQ(jsonNumber(0.1), "0.1");
    EXPECT_EQ(jsonNumber(1.000264054289562), "1.000264054289562");
    // The backstop for non-finite values (factories already strip
    // them): never emit a bare nan/inf token.
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()),
              "null");
}

} // namespace
} // namespace grow::report
