/**
 * @file
 * Zero-denominator guards feeding the report layer: an all-on-chip
 * phase (no sparse fetches) and a cache-less inference must yield
 * finite metrics, so format=json output can never contain nan.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "accel/accelerator.hpp"
#include "gcn/runner.hpp"
#include "report/record.hpp"

namespace grow {
namespace {

TEST(MetricGuards, SparseBandwidthUtilWithNoFetchesIsFinite)
{
    accel::PhaseResult r;
    ASSERT_EQ(r.fetchedSparseBytes, 0u);
    EXPECT_TRUE(std::isfinite(r.sparseBandwidthUtil()));
    EXPECT_DOUBLE_EQ(r.sparseBandwidthUtil(), 1.0);
    // And the report cell built from it is numeric, not text-only.
    EXPECT_TRUE(report::fraction(r.sparseBandwidthUtil()).hasValue);
}

TEST(MetricGuards, CacheHitRateWithoutLookupsIsFinite)
{
    gcn::InferenceResult r;
    ASSERT_EQ(r.cacheHits + r.cacheMisses, 0u);
    EXPECT_TRUE(std::isfinite(r.cacheHitRate()));
    EXPECT_DOUBLE_EQ(r.cacheHitRate(), 0.0);
    EXPECT_TRUE(report::fraction(r.cacheHitRate()).hasValue);
}

} // namespace
} // namespace grow
