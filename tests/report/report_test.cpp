/**
 * @file
 * The structured results API: Value factories (canonical formatting +
 * non-finite sanitization), record flattening semantics, and the
 * table-sink golden lock against the pre-redesign hand-formatted
 * bench output.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "report/report.hpp"
#include "report/sinks.hpp"
#include "util/table.hpp"

namespace grow::report {
namespace {

TEST(Value, FactoriesApplyCanonicalFormatting)
{
    EXPECT_EQ(count(2110358).text, "2,110,358");
    EXPECT_EQ(count(2110358).unit, "count");
    EXPECT_EQ(count(37881, "cycles").unit, "cycles");
    EXPECT_EQ(ratio(2.8437).text, "2.84x");
    EXPECT_EQ(ratio(2.8437).unit, "x");
    EXPECT_EQ(fraction(0.305).text, "30.5%");
    EXPECT_DOUBLE_EQ(fraction(0.305).value, 0.305);
    EXPECT_EQ(real(1.2345, 2).text, "1.23");
    EXPECT_EQ(textCell("-").hasValue, false);
    EXPECT_EQ(custom(3.5, "3.50 ms", "ms").text, "3.50 ms");
    EXPECT_DOUBLE_EQ(custom(3.5, "3.50 ms", "ms").value, 3.5);
}

TEST(Value, NonFiniteValuesDegradeToTextOnly)
{
    // nan/inf are not valid JSON numbers; the factories must strip
    // the numeric payload so no sink can ever emit them.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_FALSE(ratio(nan).hasValue);
    EXPECT_FALSE(ratio(inf).hasValue);
    EXPECT_FALSE(fraction(-inf).hasValue);
    EXPECT_FALSE(real(nan, 2).hasValue);
    EXPECT_TRUE(ratio(1.0).hasValue);
}

Report
makeSmallReport()
{
    ReportMeta meta;
    meta.bench = "fig20_speedup";
    meta.revision = "test-rev";
    meta.scale = "unit";
    meta.model = "gcn";
    Report rep(meta);
    rep.note("\n### Figure 20(a): speedup vs GCNAX [scale=unit]");
    auto t = rep.table("fig20a", "Figure 20(a)");
    t.col("dataset", "dataset")
        .col("gcnax_cycles", "GCNAX cycles", "cycles")
        .col("speedup_nogp", "GROW (w/o G.P)")
        .col("speedup_gp", "GROW (with G.P)");
    t.row({.dataset = "cora"})
        .add(textCell("cora"))
        .add(count(37881, "cycles"))
        .add(ratio(1.0003))
        .add(ratio(1.0003));
    t.row({.dataset = "citeseer"})
        .add(textCell("citeseer"))
        .add(count(50184, "cycles"))
        .add(ratio(1.0013))
        .add(ratio(1.0013));
    return rep;
}

TEST(Report, TableSinkMatchesPreRedesignFig20Golden)
{
    // Byte-for-byte lock against the output main's hand-formatted
    // bench_fig20_speedup printed before the report redesign (banner
    // via std::cout, table via TextTable::print()).
    auto rep = makeSmallReport();
    std::ostringstream os;
    TableSink().emit(rep, os);
    const std::string golden =
        "\n### Figure 20(a): speedup vs GCNAX [scale=unit]\n"
        "== Figure 20(a) ==\n"
        "+----------+--------------+----------------+-----------------+\n"
        "| dataset  | GCNAX cycles | GROW (w/o G.P) | GROW (with G.P) |\n"
        "+----------+--------------+----------------+-----------------+\n"
        "| cora     | 37,881       | 1.00x          | 1.00x           |\n"
        "| citeseer | 50,184       | 1.00x          | 1.00x           |\n"
        "+----------+--------------+----------------+-----------------+\n";
    EXPECT_EQ(os.str(), golden);
}

TEST(Report, TableSinkMatchesPreRedesignModelZooSummaryGolden)
{
    // The bench_model_zoo summary table shape (text + numeric mix).
    Report rep;
    auto s = rep.table("model_zoo_summary",
                       "Sec. VIII summary (grow vs gcnax)");
    s.col("model", "model")
        .col("phases_per_layer", "phases/layer", "count")
        .col("geomean_speedup", "geomean speedup")
        .col("extra_hardware", "extra hardware")
        .col("area_65nm", "area @65nm (mm^2)", "mm^2")
        .col("area_overhead", "area overhead");
    s.row({.model = "gcn"})
        .add(textCell("gcn"))
        .add(count(2))
        .add(ratio(1.0))
        .add(textCell("-"))
        .add(real(5.785, 3))
        .add(fraction(0.0));
    s.row({.model = "gat"})
        .add(textCell("gat"))
        .add(count(3))
        .add(ratio(1.0))
        .add(textCell("softmax unit (table-based)"))
        .add(real(5.8831, 3))
        .add(fraction(0.0166));
    std::ostringstream os;
    TableSink().emit(rep, os);
    const std::string golden =
        "== Sec. VIII summary (grow vs gcnax) ==\n"
        "+-------+--------------+-----------------+"
        "----------------------------+-------------------+"
        "---------------+\n"
        "| model | phases/layer | geomean speedup | "
        "extra hardware             | area @65nm (mm^2) | "
        "area overhead |\n"
        "+-------+--------------+-----------------+"
        "----------------------------+-------------------+"
        "---------------+\n"
        "| gcn   | 2            | 1.00x           | "
        "-                          | 5.785             | "
        "0.0%          |\n"
        "| gat   | 3            | 1.00x           | "
        "softmax unit (table-based) | 5.883             | "
        "1.7%          |\n"
        "+-------+--------------+-----------------+"
        "----------------------------+-------------------+"
        "---------------+\n";
    EXPECT_EQ(os.str(), golden);
}

TEST(Report, RecordsFlattenWithDimEchoSkips)
{
    auto rep = makeSmallReport();
    auto records = rep.records();
    // 2 rows x 3 metric columns; the "dataset" text cells are dims.
    ASSERT_EQ(records.size(), 6u);
    EXPECT_EQ(records[0].bench, "fig20_speedup");
    EXPECT_EQ(records[0].table, "fig20a");
    EXPECT_EQ(records[0].dims.dataset, "cora");
    EXPECT_EQ(records[0].metric, "gcnax_cycles");
    EXPECT_EQ(records[0].unit, "cycles");
    EXPECT_TRUE(records[0].hasValue);
    EXPECT_DOUBLE_EQ(records[0].value, 37881.0);
    EXPECT_EQ(records[1].metric, "speedup_nogp");
    EXPECT_EQ(records[1].unit, "x"); // cell unit wins over column unit
    EXPECT_EQ(records[3].dims.dataset, "citeseer");
}

TEST(Report, RecordsSkipExtraDimKeyedColumnsAndLabelColumns)
{
    Report rep;
    auto t = rep.table("sweep", "sweep");
    t.col("capacity_kib", "capacity").col("cycles", "cycles", "cycles");
    t.row({.extra = {{"capacity_kib", "512"}}})
        .add(textCell("512 KiB"))
        .add(count(1234, "cycles"));
    auto s = rep.table("avg", "Average");
    s.col("metric", "metric").col("geomean", "value");
    s.row().add(textCell("geomean speedup")).add(ratio(2.0));

    auto records = rep.records();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].metric, "cycles");
    ASSERT_EQ(records[0].dims.extra.size(), 1u);
    EXPECT_EQ(records[0].dims.extra[0].first, "capacity_kib");
    EXPECT_EQ(records[0].dims.extra[0].second, "512");
    EXPECT_EQ(records[1].metric, "geomean");
}

TEST(Report, RowBuildersSurviveRowVectorReallocation)
{
    // RowBuilder indexes into the table instead of holding a Row
    // pointer: interleaving add() calls on earlier rows with new row()
    // declarations (which can reallocate the row vector) must work.
    Report rep;
    auto t = rep.table("t", "t");
    t.col("dataset", "dataset").col("b", "b", "count");
    std::vector<RowBuilder> rows;
    for (int i = 0; i < 64; ++i)
        rows.push_back(t.row({.dataset = "d" + std::to_string(i)}));
    for (int i = 0; i < 64; ++i)
        rows[i].add(textCell("d" + std::to_string(i)))
            .add(count(static_cast<uint64_t>(i)));
    auto records = rep.records();
    ASSERT_EQ(records.size(), 64u);
    EXPECT_EQ(records[63].dims.dataset, "d63");
    EXPECT_DOUBLE_EQ(records[63].value, 63.0);
}

TEST(Report, MergeStampsBenchesAndKeepsRecordProvenance)
{
    auto child = makeSmallReport();
    Report merged;
    merged.meta().bench = "bench_suite";
    merged.merge(child);
    EXPECT_EQ(merged.meta().benches,
              std::vector<std::string>{"fig20_speedup"});
    auto records = merged.records();
    ASSERT_EQ(records.size(), 6u);
    // Records keep the child's bench name, not the suite's.
    EXPECT_EQ(records[0].bench, "fig20_speedup");
}

TEST(Report, CsvSinkEscapesAndFlattens)
{
    auto rep = makeSmallReport();
    std::ostringstream os;
    CsvSink().emit(rep, os);
    std::istringstream lines(os.str());
    std::string header, first;
    std::getline(lines, header);
    std::getline(lines, first);
    EXPECT_EQ(header,
              "bench,table,dataset,engine,model,depth,dims,metric,unit,"
              "value,text");
    // The display text "37,881" contains a comma and must be quoted.
    EXPECT_EQ(first,
              "fig20_speedup,fig20a,cora,,,,,gcnax_cycles,cycles,37881,"
              "\"37,881\"");
}

} // namespace
} // namespace grow::report
