/**
 * @file
 * Multi-chip scale-out invariants: chips=1 reproduces the single-chip
 * runner bit-for-bit, sharded runs are deterministic for every worker
 * count, the link byte counters obey conservation (sent == received ==
 * cut-edge halo feature bytes), and the closed-form link estimate
 * prices the co-simulation within its documented envelope.
 */
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "costmodel/link_model.hpp"
#include "driver/engine_factory.hpp"
#include "gcn/runner.hpp"
#include "gcn/workload.hpp"
#include "scaleout/runner.hpp"

namespace grow::scaleout {
namespace {

/** Unit-tier workloads with clusters small enough to shard 8 ways. */
const gcn::GcnWorkload &
workloadOf(const std::string &name)
{
    static std::map<std::string, gcn::GcnWorkload> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        gcn::WorkloadConfig c;
        c.tier = graph::ScaleTier::Unit;
        c.targetClusterSize = 64;
        it = cache
                 .emplace(name,
                          gcn::buildWorkload(graph::datasetByName(name),
                                             c))
                 .first;
    }
    return it->second;
}

/** Field-by-field equality of everything the reports consume. */
void
expectSameResult(const gcn::InferenceResult &a,
                 const gcn::InferenceResult &b)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.combinationCycles, b.combinationCycles);
    EXPECT_EQ(a.aggregationCycles, b.aggregationCycles);
    EXPECT_EQ(a.attentionCycles, b.attentionCycles);
    EXPECT_EQ(a.haloCycles, b.haloCycles);
    EXPECT_EQ(a.macOps, b.macOps);
    EXPECT_EQ(a.totalTrafficBytes(), b.totalTrafficBytes());
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
    ASSERT_EQ(a.phases.size(), b.phases.size());
    for (size_t i = 0; i < a.phases.size(); ++i) {
        EXPECT_EQ(a.phases[i].op, b.phases[i].op) << "phase " << i;
        EXPECT_EQ(a.phases[i].result.cycles, b.phases[i].result.cycles)
            << "phase " << i;
        EXPECT_EQ(a.phases[i].result.traffic.total(),
                  b.phases[i].result.traffic.total())
            << "phase " << i;
    }
}

TEST(Scaleout, OneChipTopologyReproducesSingleChipRunner)
{
    const auto &w = workloadOf("cora");
    const auto topo = EngineTopology("grow").withChips(1);

    gcn::RunOptions opts;
    opts.sim.threads = 2;
    const auto sharded = runInference(topo, w, opts);

    auto spec = driver::engineByKey("grow");
    gcn::RunOptions single = opts;
    single.usePartitioning = spec.usePartitioning;
    auto engine = spec.make();
    const auto direct = gcn::runInference(*engine, w, single);

    expectSameResult(sharded.merged, direct);
    EXPECT_EQ(sharded.haloBytes, 0u);
    EXPECT_EQ(sharded.haloCycles, 0u);
    EXPECT_EQ(sharded.shard.cutArcs, 0u);
}

TEST(Scaleout, ShardedRunIsThreadCountInvariant)
{
    const auto &w = workloadOf("citeseer");
    const auto topo = EngineTopology("grow").withChips(4);

    gcn::RunOptions serial;
    serial.sim.threads = 1;
    const auto a = runInference(topo, w, serial);

    gcn::RunOptions parallel;
    parallel.sim.threads = 4;
    const auto b = runInference(topo, w, parallel);

    expectSameResult(a.merged, b.merged);
    EXPECT_EQ(a.haloBytes, b.haloBytes);
    ASSERT_EQ(a.links.egressBytes.size(), b.links.egressBytes.size());
    for (size_t i = 0; i < a.links.egressBytes.size(); ++i)
        EXPECT_EQ(a.links.egressBytes[i], b.links.egressBytes[i]);
}

TEST(Scaleout, EpochWindowDoesNotChangeResults)
{
    const auto &w = workloadOf("cora");
    const auto topo = EngineTopology("grow").withChips(2);

    gcn::RunOptions a;
    a.sim.threads = 1;
    a.sim.epochCycles = 256;
    gcn::RunOptions b;
    b.sim.threads = 3;
    b.sim.epochCycles = 256;
    expectSameResult(runInference(topo, w, a).merged,
                     runInference(topo, w, b).merged);
}

TEST(Scaleout, LinkByteConservation)
{
    const auto &w = workloadOf("pubmed");
    for (uint32_t chips : {2u, 4u, 8u}) {
        const auto topo = EngineTopology("grow").withChips(chips);
        gcn::RunOptions opts;
        opts.sim.threads = 2;
        const auto r = runInference(topo, w, opts);

        // Sent == received == the halo plan's cut-edge feature bytes.
        std::vector<Bytes> sent(chips, 0), received(chips, 0);
        Bytes pairTotal = 0;
        for (const auto &pair : r.links.pairs) {
            sent[pair.src] += pair.bytes;
            received[pair.dst] += pair.bytes;
            pairTotal += pair.bytes;
        }
        for (uint32_t c = 0; c < chips; ++c)
            EXPECT_EQ(r.links.egressBytes[c], sent[c])
                << "chips=" << chips << " link " << c;
        EXPECT_EQ(pairTotal, r.haloBytes) << "chips=" << chips;

        // Independently recompute the expected halo payload from the
        // halo plan: boundary vertices x per-layer feature bytes.
        Bytes expected = 0;
        gcn::RunOptions planOpts;
        planOpts.usePartitioning = true;
        planOpts.chips = chips;
        const auto plan = gcn::buildPhasePlan(w, planOpts);
        for (const auto &ph : plan) {
            if (ph.op != gcn::PhaseOp::HaloExchange)
                continue;
            for (uint32_t dst = 0; dst < chips; ++dst)
                for (uint32_t src = 0; src < chips; ++src)
                    expected += r.halo.pairPhaseBytes(
                        dst, src, ph.problem.rhsCols);
        }
        EXPECT_EQ(expected, r.haloBytes) << "chips=" << chips;
        EXPECT_GT(r.haloBytes, 0u) << "chips=" << chips;
    }
}

TEST(Scaleout, LinkEstimateMatchesSimulatedBytesExactly)
{
    const auto &w = workloadOf("pubmed");
    const uint32_t chips = 4;
    const auto topo = EngineTopology("grow").withChips(chips);
    gcn::RunOptions opts;
    opts.sim.threads = 2;
    const auto r = runInference(topo, w, opts);

    gcn::RunOptions planOpts;
    planOpts.usePartitioning = true;
    planOpts.chips = chips;
    const auto plan = gcn::buildPhasePlan(w, planOpts);
    const auto est = costmodel::estimateLinkTraffic(plan, r.shard,
                                                    r.halo, topo.link);

    // Bytes are exact by construction: estimator and runner read the
    // same halo plan.
    EXPECT_EQ(est.totalBytes, r.haloBytes);
    for (uint32_t c = 0; c < chips; ++c)
        EXPECT_EQ(est.egressBytes[c], r.links.egressBytes[c])
            << "link " << c;

    // Cycles are a roofline under the co-simulation: the sim adds
    // epoch-window quantisation and per-transfer issue effects on top
    // of latency + serialization, and overlap can shave the latency
    // leg. Documented envelope: within [0.5x, 2x].
    EXPECT_GT(est.haloCycles, 0u);
    EXPECT_GE(r.haloCycles * 2, est.haloCycles);
    EXPECT_LE(r.haloCycles, est.haloCycles * 2);
}

TEST(Scaleout, NonPartitioningEngineRejectsSharding)
{
    const auto topo = EngineTopology("gcnax").withChips(2);
    EXPECT_THROW(driver::engineForTopology(topo), std::runtime_error);
}

TEST(Scaleout, TopologyValidationRejectsNonsense)
{
    EXPECT_THROW(EngineTopology("grow").withChips(0).validate(),
                 std::runtime_error);
    EXPECT_THROW(EngineTopology("grow").withChips(65).validate(),
                 std::runtime_error);
    EXPECT_THROW(EngineTopology("grow").withLinkGbps(0.0).validate(),
                 std::runtime_error);
    EXPECT_THROW(
        EngineTopology("gcnax")
            .withGrowConfig(core::GrowConfig{})
            .validate(),
        std::runtime_error);
    EXPECT_NO_THROW(
        EngineTopology("grow").withChips(8).withLinkGbps(32).validate());
}

} // namespace
} // namespace grow::scaleout
