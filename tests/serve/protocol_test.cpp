/**
 * @file
 * Wire protocol: request/response round-trips, command lines,
 * malformed-input rejection (the daemon must answer, never die), the
 * canonical digest line, seeded schedules and the percentile helper.
 */
#include <gtest/gtest.h>

#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/schedule.hpp"

namespace grow::serve {
namespace {

TEST(Protocol, RequestRoundTrip)
{
    ServeRequest req;
    req.id = 42;
    req.tenant = "alpha";
    req.dataset = "citeseer";
    req.model = "gin";
    req.engine = "gcnax";
    req.tier = graph::ScaleTier::Tiny;
    req.depth = 3;
    req.seed = 99;
    req.deadlineRelUs = 250000;

    ClientLine parsed;
    std::string error;
    ASSERT_TRUE(parseClientLine(encodeRequest(req), parsed, &error))
        << error;
    ASSERT_EQ(parsed.kind, ClientLine::Kind::Request);
    const ServeRequest &r = parsed.request;
    EXPECT_EQ(r.id, 42u);
    EXPECT_EQ(r.tenant, "alpha");
    EXPECT_EQ(r.dataset, "citeseer");
    EXPECT_EQ(r.model, "gin");
    EXPECT_EQ(r.engine, "gcnax");
    EXPECT_EQ(r.tier, graph::ScaleTier::Tiny);
    EXPECT_EQ(r.depth, 3u);
    EXPECT_EQ(r.seed, 99u);
    EXPECT_EQ(r.deadlineRelUs, 250000);
}

TEST(Protocol, DefaultsApplyWhenKeysOmitted)
{
    ClientLine parsed;
    std::string error;
    ASSERT_TRUE(parseClientLine(R"({"id":1,"dataset":"cora"})", parsed,
                                &error))
        << error;
    EXPECT_EQ(parsed.request.tenant, "default");
    EXPECT_EQ(parsed.request.model, "gcn");
    EXPECT_EQ(parsed.request.engine, "grow");
    EXPECT_EQ(parsed.request.tier, graph::ScaleTier::Mini);
    EXPECT_EQ(parsed.request.depth, 2u);
    EXPECT_EQ(parsed.request.deadlineRelUs, 0);
}

TEST(Protocol, CommandLines)
{
    ClientLine parsed;
    ASSERT_TRUE(parseClientLine(encodeShutdown(), parsed, nullptr));
    EXPECT_EQ(parsed.kind, ClientLine::Kind::Shutdown);
    ASSERT_TRUE(parseClientLine(encodePing(), parsed, nullptr));
    EXPECT_EQ(parsed.kind, ClientLine::Kind::Ping);
}

TEST(Protocol, MalformedLinesRejectedWithReason)
{
    const char *bad[] = {
        "",                                    // not JSON
        "not json",                            // not JSON
        "[1,2]",                               // not an object
        R"({"dataset":"cora"})",               // missing id
        R"({"id":1})",                         // missing dataset
        R"({"id":-1,"dataset":"cora"})",       // negative id
        R"({"id":1.5,"dataset":"cora"})",      // fractional id
        R"({"id":1,"dataset":"cora","scale":"huge"})",  // bad tier
        R"({"id":1,"dataset":"cora","depth":0})",       // zero depth
        R"({"id":1,"dataset":"cora","bogus":1})",       // unknown key
        R"({"cmd":"shutdown","id":1})",        // cmd with extras
        R"({"cmd":"explode"})",                // unknown cmd
    };
    for (const char *line : bad) {
        ClientLine parsed;
        std::string error;
        EXPECT_FALSE(parseClientLine(line, parsed, &error))
            << "accepted: " << line;
        EXPECT_FALSE(error.empty()) << line;
    }
}

TEST(Protocol, ResponseRoundTripCompleted)
{
    RequestRecord rec;
    rec.request.id = 7;
    rec.request.tenant = "t";
    rec.request.dataset = "pubmed";
    rec.request.tier = graph::ScaleTier::Unit;
    rec.status = RequestStatus::Completed;
    rec.request.arrivalUs = 1000;
    rec.dispatchUs = 3000;
    rec.completionUs = 5500;
    rec.execMs = 2.5;
    rec.digest = {123456, 789, 1011, 12, 13};

    RequestRecord parsed;
    std::string error;
    ASSERT_TRUE(parseResponse(encodeResponse(rec), parsed, &error))
        << error;
    EXPECT_EQ(parsed.status, RequestStatus::Completed);
    EXPECT_EQ(parsed.request.id, 7u);
    EXPECT_EQ(parsed.digest.cycles, 123456u);
    EXPECT_EQ(parsed.digest.dramBytes, 789u);
    EXPECT_EQ(parsed.digest.macOps, 1011u);
    EXPECT_EQ(parsed.digest.cacheHits, 12u);
    EXPECT_EQ(parsed.digest.cacheMisses, 13u);
    // Wire latencies survive the round trip via reconstructed stamps.
    EXPECT_DOUBLE_EQ(parsed.queueMs(), rec.queueMs());
    EXPECT_DOUBLE_EQ(parsed.totalMs(), rec.totalMs());
}

TEST(Protocol, ResponseRoundTripRejection)
{
    RequestRecord rec;
    rec.request.id = 8;
    rec.status = RequestStatus::RejectedQueueFull;
    rec.request.arrivalUs = 100;
    rec.completionUs = 100;

    RequestRecord parsed;
    std::string error;
    ASSERT_TRUE(parseResponse(encodeResponse(rec), parsed, &error))
        << error;
    EXPECT_EQ(parsed.status, RequestStatus::RejectedQueueFull);
    EXPECT_EQ(parsed.digest.cycles, 0u);
}

TEST(Protocol, StatusNamesRoundTrip)
{
    for (RequestStatus s :
         {RequestStatus::Completed, RequestStatus::RejectedQueueFull,
          RequestStatus::RejectedBytes, RequestStatus::RejectedClosed,
          RequestStatus::Expired, RequestStatus::Error}) {
        RequestStatus back = RequestStatus::Completed;
        ASSERT_TRUE(statusFromName(statusName(s), back));
        EXPECT_EQ(back, s);
    }
    RequestStatus out;
    EXPECT_FALSE(statusFromName("nope", out));
}

TEST(Protocol, DigestLineIsCanonical)
{
    ServeRequest req;
    req.id = 3;
    req.tenant = "alpha";
    req.dataset = "cora";
    req.tier = graph::ScaleTier::Unit;
    InferenceDigest digest{100, 200, 300, 4, 5};
    EXPECT_EQ(digestLine(req, digest),
              "tenant=alpha id=3 dataset=cora model=gcn engine=grow "
              "scale=unit depth=2 seed=7 cycles=100 dram_bytes=200 "
              "mac_ops=300 cache_hits=4 cache_misses=5");
}

TEST(Schedule, DeterministicAndWeighted)
{
    ScheduleConfig config;
    config.seed = 11;
    config.count = 200;
    config.tenants = {{"heavy", 8}, {"light", 1}};
    config.datasets = {"cora", "citeseer"};
    const auto a = buildSchedule(config);
    const auto b = buildSchedule(config);
    ASSERT_EQ(a.size(), 200u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].atUs, b[i].atUs);
        EXPECT_EQ(a[i].request.tenant, b[i].request.tenant);
        EXPECT_EQ(a[i].request.dataset, b[i].request.dataset);
        EXPECT_EQ(a[i].request.seed, b[i].request.seed);
    }
    // Arrival times strictly increase; the weighted draw skews ~8:1.
    size_t heavy = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        if (i > 0)
            EXPECT_GT(a[i].atUs, a[i - 1].atUs);
        heavy += a[i].request.tenant == "heavy";
    }
    EXPECT_GT(heavy, 150u);
    EXPECT_LT(heavy, 200u);

    // A different seed yields a different draw sequence.
    config.seed = 12;
    const auto c = buildSchedule(config);
    bool differs = false;
    for (size_t i = 0; i < a.size(); ++i)
        differs |= a[i].atUs != c[i].atUs ||
                   a[i].request.tenant != c[i].request.tenant;
    EXPECT_TRUE(differs);
}

TEST(Schedule, TenantMixParsing)
{
    std::vector<TenantMix> mix;
    std::string error;
    ASSERT_TRUE(parseTenantMix("alpha:3,beta,gamma:1", mix, &error));
    ASSERT_EQ(mix.size(), 3u);
    EXPECT_EQ(mix[0].name, "alpha");
    EXPECT_EQ(mix[0].weight, 3u);
    EXPECT_EQ(mix[1].name, "beta");
    EXPECT_EQ(mix[1].weight, 1u);
    EXPECT_FALSE(parseTenantMix("", mix, &error));
    EXPECT_FALSE(parseTenantMix(":2", mix, &error));
    EXPECT_FALSE(parseTenantMix("a:0", mix, &error));
    EXPECT_FALSE(parseTenantMix("a:x", mix, &error));
}

TEST(Percentile, NearestRank)
{
    std::vector<double> sorted = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    EXPECT_DOUBLE_EQ(percentile(sorted, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(sorted, 0.50), 5.0);
    EXPECT_DOUBLE_EQ(percentile(sorted, 0.95), 10.0);
    EXPECT_DOUBLE_EQ(percentile(sorted, 1.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(percentile({42.0}, 0.99), 42.0);
}

} // namespace
} // namespace grow::serve
