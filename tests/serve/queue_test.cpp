/**
 * @file
 * RequestQueue admission control: bounded depth, in-flight byte
 * budget, shutdown rejection, deadline expiry at dispatch and the
 * per-tenant fair-share pop order.
 */
#include <gtest/gtest.h>

#include "serve/queue.hpp"

namespace grow::serve {
namespace {

ServeRequest
makeRequest(uint64_t id, const std::string &tenant, uint64_t costBytes = 0)
{
    ServeRequest r;
    r.id = id;
    r.tenant = tenant;
    r.dataset = "cora";
    r.costBytes = costBytes;
    return r;
}

TEST(RequestQueue, RejectsPastMaxDepth)
{
    AdmissionConfig config;
    config.maxDepth = 2;
    RequestQueue q(config);
    EXPECT_EQ(q.push(makeRequest(1, "a"), 0), Admission::Admitted);
    EXPECT_EQ(q.push(makeRequest(2, "a"), 0), Admission::Admitted);
    EXPECT_EQ(q.push(makeRequest(3, "a"), 0), Admission::QueueFull);
    EXPECT_EQ(q.depth(), 2u);

    // A dispatch frees the slot.
    ServeRequest out;
    std::vector<ServeRequest> expired;
    ASSERT_TRUE(q.pop(0, out, expired));
    EXPECT_EQ(q.push(makeRequest(4, "a"), 0), Admission::Admitted);
}

TEST(RequestQueue, ByteBudgetCountsQueuedAndInflight)
{
    AdmissionConfig config;
    config.maxDepth = 16;
    config.byteBudget = 100;
    RequestQueue q(config);
    EXPECT_EQ(q.push(makeRequest(1, "a", 60), 0), Admission::Admitted);
    EXPECT_EQ(q.push(makeRequest(2, "a", 60), 0),
              Admission::OverByteBudget);
    EXPECT_EQ(q.push(makeRequest(3, "a", 40), 0), Admission::Admitted);

    // Dispatching does NOT release the budget -- the request is now
    // in flight; only completion does.
    ServeRequest out;
    std::vector<ServeRequest> expired;
    ASSERT_TRUE(q.pop(0, out, expired));
    EXPECT_EQ(out.id, 1u);
    EXPECT_EQ(q.pendingBytes(), 100u);
    EXPECT_EQ(q.push(makeRequest(4, "a", 10), 0),
              Admission::OverByteBudget);
    q.onComplete(out);
    EXPECT_EQ(q.pendingBytes(), 40u);
    EXPECT_EQ(q.push(makeRequest(5, "a", 10), 0), Admission::Admitted);
}

TEST(RequestQueue, ClosedQueueRejectsEverything)
{
    RequestQueue q({});
    EXPECT_EQ(q.push(makeRequest(1, "a"), 0), Admission::Admitted);
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_EQ(q.push(makeRequest(2, "a"), 0), Admission::Closed);
    // Already-admitted work still drains.
    ServeRequest out;
    std::vector<ServeRequest> expired;
    EXPECT_TRUE(q.pop(0, out, expired));
    EXPECT_EQ(out.id, 1u);
}

TEST(RequestQueue, DeadlineStampedAndExpiredAtPop)
{
    AdmissionConfig config;
    config.defaultDeadlineUs = 500;
    RequestQueue q(config);

    // Relative wire deadline wins over the default.
    ServeRequest withRel = makeRequest(1, "a");
    withRel.deadlineRelUs = 100;
    EXPECT_EQ(q.push(withRel, 1000), Admission::Admitted);
    ServeRequest noRel = makeRequest(2, "a");
    EXPECT_EQ(q.push(noRel, 1000), Admission::Admitted);

    // At t=1200 request 1 (deadline 1100) is expired, request 2
    // (deadline 1500) dispatches.
    ServeRequest out;
    std::vector<ServeRequest> expired;
    ASSERT_TRUE(q.pop(1200, out, expired));
    EXPECT_EQ(out.id, 2u);
    ASSERT_EQ(expired.size(), 1u);
    EXPECT_EQ(expired[0].id, 1u);
    EXPECT_EQ(expired[0].deadlineUs, 1100);
    EXPECT_EQ(out.deadlineUs, 1500);
    EXPECT_EQ(q.depth(), 0u);
}

TEST(RequestQueue, ExpiredRequestsReleaseBytes)
{
    AdmissionConfig config;
    config.byteBudget = 100;
    RequestQueue q(config);
    ServeRequest r = makeRequest(1, "a", 80);
    r.deadlineRelUs = 10;
    EXPECT_EQ(q.push(r, 0), Admission::Admitted);
    EXPECT_EQ(q.pendingBytes(), 80u);

    ServeRequest out;
    std::vector<ServeRequest> expired;
    EXPECT_FALSE(q.pop(100, out, expired));
    ASSERT_EQ(expired.size(), 1u);
    EXPECT_EQ(q.pendingBytes(), 0u);
    EXPECT_EQ(q.push(makeRequest(2, "a", 80), 100), Admission::Admitted);
}

TEST(RequestQueue, FairShareRoundRobinAcrossTenants)
{
    RequestQueue q({});
    // Tenant "a" floods; "b" and "c" each queue one request.
    for (uint64_t i = 1; i <= 4; ++i)
        EXPECT_EQ(q.push(makeRequest(i, "a"), 0), Admission::Admitted);
    EXPECT_EQ(q.push(makeRequest(10, "b"), 0), Admission::Admitted);
    EXPECT_EQ(q.push(makeRequest(20, "c"), 0), Admission::Admitted);
    EXPECT_EQ(q.activeTenants(), 3u);

    std::vector<uint64_t> order;
    ServeRequest out;
    std::vector<ServeRequest> expired;
    while (q.pop(0, out, expired))
        order.push_back(out.id);
    // One request from every active tenant per cycle, tenants in name
    // order: a, b, c, then a's backlog alone.
    EXPECT_EQ(order, (std::vector<uint64_t>{1, 10, 20, 2, 3, 4}));
}

TEST(RequestQueue, FifoWithinOneTenant)
{
    RequestQueue q({});
    for (uint64_t i = 1; i <= 5; ++i)
        EXPECT_EQ(q.push(makeRequest(i, "only"), 0), Admission::Admitted);
    std::vector<uint64_t> order;
    ServeRequest out;
    std::vector<ServeRequest> expired;
    while (q.pop(0, out, expired))
        order.push_back(out.id);
    EXPECT_EQ(order, (std::vector<uint64_t>{1, 2, 3, 4, 5}));
}

} // namespace
} // namespace grow::serve
