/**
 * @file
 * Served-vs-direct equivalence: the same request tuple must produce a
 * bit-identical inference digest whether it runs through the socket
 * daemon, the virtual-clock loop, or a direct Executor call -- the
 * property the CI serving gate diffs. Also covers the daemon's
 * non-fatal handling of invalid requests and protocol garbage, and
 * graceful drain on the shutdown command.
 */
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <map>

#include "driver/workload_cache.hpp"
#include "serve/executor.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/virtual_serve.hpp"

namespace grow::serve {
namespace {

/** Minimal blocking client for one test connection. */
class TestClient
{
  public:
    explicit TestClient(const std::string &path)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        EXPECT_GE(fd_, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        connected_ = ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                               sizeof(addr)) == 0;
    }

    ~TestClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool connected() const { return connected_; }

    void
    send(const std::string &line)
    {
        std::string framed = line + "\n";
        ASSERT_EQ(::send(fd_, framed.data(), framed.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(framed.size()));
    }

    bool
    readLine(std::string &line)
    {
        for (;;) {
            size_t nl = buffer_.find('\n');
            if (nl != std::string::npos) {
                line = buffer_.substr(0, nl);
                buffer_.erase(0, nl + 1);
                return true;
            }
            char chunk[4096];
            ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return false;
            buffer_.append(chunk, static_cast<size_t>(n));
        }
    }

  private:
    int fd_ = -1;
    bool connected_ = false;
    std::string buffer_;
};

std::string
testSocketPath(const char *tag)
{
    return "/tmp/grow_serve_test_" + std::to_string(::getpid()) + "_" +
           tag + ".sock";
}

ServeRequest
unitRequest(uint64_t id, const std::string &dataset,
            const std::string &engine)
{
    ServeRequest req;
    req.id = id;
    req.dataset = dataset;
    req.engine = engine;
    req.tier = graph::ScaleTier::Unit;
    req.seed = 7 + id;
    return req;
}

TEST(ServeEquivalence, DaemonVirtualAndDirectDigestsMatch)
{
    const std::vector<ServeRequest> requests = {
        unitRequest(1, "cora", "grow"),
        unitRequest(2, "citeseer", "gcnax"),
        unitRequest(3, "cora", "grow"), // distinct seed, same graph
    };

    // Direct: one Executor call per request.
    driver::WorkloadCache directCache;
    Executor direct(directCache);
    std::map<uint64_t, std::string> directLines;
    for (const ServeRequest &req : requests) {
        ExecResult r = direct.run(req);
        ASSERT_TRUE(r.ok) << r.error;
        directLines[req.id] = digestLine(req, r.digest);
    }

    // Virtual clock: same requests as an instantaneous schedule.
    driver::WorkloadCache virtCache;
    Executor virtExec(virtCache);
    std::vector<ScheduledRequest> schedule;
    for (size_t i = 0; i < requests.size(); ++i)
        schedule.push_back(
            {static_cast<Micros>(i + 1), requests[i]});
    auto virtualResult =
        runVirtualServe(schedule, &virtExec, {}, nullptr);
    for (const RequestRecord &rec : virtualResult.records) {
        ASSERT_EQ(rec.status, RequestStatus::Completed) << rec.error;
        EXPECT_EQ(digestLine(rec.request, rec.digest),
                  directLines.at(rec.request.id));
    }

    // Socket daemon: same requests over the wire.
    driver::WorkloadCache daemonCache;
    Executor daemonExec(daemonCache);
    ServeMetrics metrics;
    ServerConfig config;
    config.socketPath = testSocketPath("equiv");
    ServeDaemon daemon(daemonExec, config, metrics);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;
    {
        TestClient client(config.socketPath);
        ASSERT_TRUE(client.connected());
        for (const ServeRequest &req : requests)
            client.send(encodeRequest(req));
        for (size_t i = 0; i < requests.size(); ++i) {
            std::string line;
            ASSERT_TRUE(client.readLine(line));
            RequestRecord rec;
            ASSERT_TRUE(parseResponse(line, rec, &error)) << error;
            EXPECT_EQ(rec.status, RequestStatus::Completed) << rec.error;
            EXPECT_EQ(digestLine(rec.request, rec.digest),
                      directLines.at(rec.request.id));
        }
        client.send(encodeShutdown());
    }
    daemon.wait();
    EXPECT_EQ(metrics.outcomes(), requests.size());
    EXPECT_EQ(daemon.records().size(), requests.size());
}

TEST(ServeDaemon, InvalidRequestsAnsweredNotFatal)
{
    driver::WorkloadCache cache;
    Executor executor(cache);
    ServeMetrics metrics;
    ServerConfig config;
    config.socketPath = testSocketPath("invalid");
    ServeDaemon daemon(executor, config, metrics);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;
    {
        TestClient client(config.socketPath);
        ASSERT_TRUE(client.connected());

        // Protocol garbage: an error response, daemon stays up.
        client.send("this is not json");
        std::string line;
        ASSERT_TRUE(client.readLine(line));
        RequestRecord rec;
        ASSERT_TRUE(parseResponse(line, rec, &error)) << error;
        EXPECT_EQ(rec.status, RequestStatus::Error);

        // Unknown dataset: validated, answered, never executed.
        ServeRequest req = unitRequest(5, "atlantis", "grow");
        client.send(encodeRequest(req));
        ASSERT_TRUE(client.readLine(line));
        ASSERT_TRUE(parseResponse(line, rec, &error)) << error;
        EXPECT_EQ(rec.status, RequestStatus::Error);
        EXPECT_EQ(rec.request.id, 5u);

        // Unknown engine likewise.
        req = unitRequest(6, "cora", "warp-drive");
        client.send(encodeRequest(req));
        ASSERT_TRUE(client.readLine(line));
        ASSERT_TRUE(parseResponse(line, rec, &error)) << error;
        EXPECT_EQ(rec.status, RequestStatus::Error);

        // The daemon still serves a valid request afterwards.
        req = unitRequest(7, "cora", "grow");
        client.send(encodeRequest(req));
        ASSERT_TRUE(client.readLine(line));
        ASSERT_TRUE(parseResponse(line, rec, &error)) << error;
        EXPECT_EQ(rec.status, RequestStatus::Completed) << rec.error;

        client.send(encodeShutdown());
    }
    daemon.wait();
    EXPECT_EQ(metrics.protocolErrors(), 1u);
    // Three request outcomes (two invalid, one served); the garbage
    // line is a protocol error, not a request outcome.
    EXPECT_EQ(metrics.outcomes(), 3u);
}

TEST(ServeDaemon, ShutdownRejectsNewButDrainsAdmitted)
{
    driver::WorkloadCache cache;
    Executor executor(cache);
    ServeMetrics metrics;
    ServerConfig config;
    config.socketPath = testSocketPath("drain");
    ServeDaemon daemon(executor, config, metrics);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;
    {
        TestClient client(config.socketPath);
        ASSERT_TRUE(client.connected());
        // Queue work, then immediately request shutdown: everything
        // admitted must still complete (clean drain), and the daemon
        // must stop on its own.
        for (uint64_t id = 1; id <= 4; ++id)
            client.send(encodeRequest(unitRequest(id, "cora", "grow")));
        client.send(encodeShutdown());
        // Expect exactly 5 lines back: 4 request responses (in any
        // interleaving with) the shutdown ack.
        size_t completed = 0;
        for (int i = 0; i < 5; ++i) {
            std::string line;
            ASSERT_TRUE(client.readLine(line));
            if (line.find("\"cmd\"") != std::string::npos)
                continue; // shutdown ack
            RequestRecord rec;
            ASSERT_TRUE(parseResponse(line, rec, &error)) << error;
            if (rec.status == RequestStatus::Completed)
                ++completed;
        }
        // All four admitted before the shutdown line was read must
        // complete; none may be dropped mid-drain.
        EXPECT_EQ(completed, 4u);
    }
    daemon.wait();
    EXPECT_EQ(daemon.records().size(), 4u);
}

} // namespace
} // namespace grow::serve
