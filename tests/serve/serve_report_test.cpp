/**
 * @file
 * Serving report shapes: the ServeMetrics tables (admission counters,
 * per-tenant percentiles, queue-depth series, cache snapshot) and the
 * batched_serving example's per-dataset table + aggregate record.
 */
#include <gtest/gtest.h>

#include <set>

#include "driver/workload_cache.hpp"
#include "report/report.hpp"
#include "serve/metrics.hpp"

namespace grow::serve {
namespace {

RequestRecord
completedRecord(uint64_t id, const std::string &tenant, Micros totalUs,
                uint64_t cycles)
{
    RequestRecord rec;
    rec.request.id = id;
    rec.request.tenant = tenant;
    rec.request.dataset = "cora";
    rec.request.tier = graph::ScaleTier::Unit;
    rec.request.arrivalUs = 0;
    rec.dispatchUs = totalUs / 2;
    rec.completionUs = totalUs;
    rec.status = RequestStatus::Completed;
    rec.digest.cycles = cycles;
    rec.digest.dramBytes = cycles * 4;
    rec.digest.cacheHits = 3;
    rec.digest.cacheMisses = 1;
    return rec;
}

/** Records of @p rep flattened, keyed "table/metric". */
std::multiset<std::string>
recordKeys(const report::Report &rep)
{
    std::multiset<std::string> keys;
    for (const report::MetricRecord &r : rep.records())
        keys.insert(r.table + "/" + r.metric);
    return keys;
}

TEST(ServeMetricsReport, TablesAndPercentiles)
{
    ServeMetrics metrics;
    metrics.recordAdmission(Admission::Admitted, 1, 10);
    metrics.recordAdmission(Admission::QueueFull, 1, 20);
    for (int i = 1; i <= 100; ++i)
        metrics.recordOutcome(
            completedRecord(static_cast<uint64_t>(i), "t",
                            static_cast<Micros>(i) * 1000, 50));
    RequestRecord rejected;
    rejected.request.tenant = "t";
    rejected.status = RequestStatus::RejectedQueueFull;
    metrics.recordOutcome(rejected);
    EXPECT_EQ(metrics.outcomes(), 101u);

    driver::WorkloadCache cache;
    const auto snapshot = cache.snapshot();
    report::Report rep;
    metrics.fillReport(rep, &snapshot);

    const auto keys = recordKeys(rep);
    EXPECT_EQ(keys.count("serve_admission/submitted"), 1u);
    EXPECT_EQ(keys.count("serve_admission/rejected_queue_full"), 1u);
    EXPECT_EQ(keys.count("serve_tenants/p50_ms"), 1u);
    EXPECT_EQ(keys.count("serve_tenants/p95_ms"), 1u);
    EXPECT_EQ(keys.count("serve_tenants/p99_ms"), 1u);
    EXPECT_EQ(keys.count("serve_cache/footprint"), 1u);
    EXPECT_GE(keys.count("serve_queue_depth/depth"), 1u);

    // Percentiles over 1..100 ms latencies: nearest-rank is exact.
    for (const report::MetricRecord &r : rep.records()) {
        if (r.table != "serve_tenants")
            continue;
        if (r.metric == "p50_ms")
            EXPECT_DOUBLE_EQ(r.value, 50.0);
        if (r.metric == "p95_ms")
            EXPECT_DOUBLE_EQ(r.value, 95.0);
        if (r.metric == "p99_ms")
            EXPECT_DOUBLE_EQ(r.value, 99.0);
        if (r.metric == "requests")
            EXPECT_DOUBLE_EQ(r.value, 101.0);
    }
}

TEST(ServeMetricsReport, DepthSeriesDecimatesDeterministically)
{
    ServeMetrics metrics;
    for (int i = 0; i < 5000; ++i)
        metrics.sampleQueueDepth(i, static_cast<uint32_t>(i % 7));
    report::Report rep;
    metrics.fillReport(rep, nullptr);
    size_t depthRows = 0;
    for (const report::MetricRecord &r : rep.records())
        depthRows += r.table == "serve_queue_depth" &&
                     r.metric == "depth";
    EXPECT_GE(depthRows, 64u);
    EXPECT_LE(depthRows, 1024u);
}

TEST(ServedDatasetTable, HistoricalExampleShape)
{
    std::vector<RequestRecord> records;
    records.push_back(completedRecord(1, "t", 1000, 1000000));
    records.push_back(completedRecord(2, "t", 2000, 3000000));
    RequestRecord failed;
    failed.request.dataset = "cora";
    failed.status = RequestStatus::Error;
    records.push_back(failed); // must not contribute

    report::Report rep;
    const double aggregateMs =
        appendServedDatasetTable(rep, records, "batched_serving", "t");
    // 4M simulated cycles at 1 GHz.
    EXPECT_DOUBLE_EQ(aggregateMs, 4.0);

    const auto keys = recordKeys(rep);
    for (const char *metric :
         {"nodes", "mean_cycles", "mean_dram_traffic", "hdn_hit_rate",
          "mean_latency_ms"})
        EXPECT_EQ(keys.count(std::string("batched_serving/") + metric),
                  1u)
            << metric;

    for (const report::MetricRecord &r : rep.records()) {
        if (r.metric == "mean_cycles")
            EXPECT_DOUBLE_EQ(r.value, 2000000.0);
        if (r.metric == "hdn_hit_rate")
            EXPECT_DOUBLE_EQ(r.value, 0.75);
        if (r.metric == "mean_latency_ms")
            EXPECT_DOUBLE_EQ(r.value, 2.0);
        if (r.metric == "nodes")
            EXPECT_EQ(r.dims.dataset, "cora");
    }
}

} // namespace
} // namespace grow::serve
