/**
 * @file
 * Virtual-clock serving loop: deterministic replay, queue-overflow
 * rejection, deadline expiry before dispatch, and per-tenant fairness
 * under a skewed seeded workload -- all with synthetic service times
 * (no simulator), so the queueing behaviour itself is under test.
 */
#include <gtest/gtest.h>

#include <map>

#include "serve/virtual_serve.hpp"

namespace grow::serve {
namespace {

/** Fixed service time in ms for every request. */
VirtualServeConfig
fixedService(double ms)
{
    VirtualServeConfig config;
    config.serviceMs = [ms](const ServeRequest &) { return ms; };
    return config;
}

std::vector<ScheduledRequest>
arrivals(const std::vector<std::pair<Micros, std::string>> &list)
{
    std::vector<ScheduledRequest> schedule;
    uint64_t id = 0;
    for (const auto &[at, tenant] : list) {
        ScheduledRequest sr;
        sr.atUs = at;
        sr.request.id = ++id;
        sr.request.tenant = tenant;
        sr.request.dataset = "cora";
        schedule.push_back(std::move(sr));
    }
    return schedule;
}

std::map<RequestStatus, int>
statusCounts(const VirtualServeResult &result)
{
    std::map<RequestStatus, int> counts;
    for (const RequestRecord &r : result.records)
        ++counts[r.status];
    return counts;
}

TEST(VirtualServe, BackToBackServiceOnOneSlot)
{
    // Three arrivals at t=0 (well, 1us apart), 1 ms service each:
    // completions at 1, 2, 3 ms.
    auto schedule = arrivals({{1, "a"}, {2, "a"}, {3, "a"}});
    auto result =
        runVirtualServe(schedule, nullptr, fixedService(1.0), nullptr);
    ASSERT_EQ(result.records.size(), 3u);
    for (const RequestRecord &r : result.records)
        EXPECT_EQ(r.status, RequestStatus::Completed);
    EXPECT_EQ(result.records[0].completionUs, 1001);
    EXPECT_EQ(result.records[1].completionUs, 2001);
    EXPECT_EQ(result.records[2].completionUs, 3001);
    // Queue latency accrues for the waiters.
    EXPECT_EQ(result.records[1].dispatchUs, 1001);
    EXPECT_EQ(result.records[2].dispatchUs, 2001);
    EXPECT_EQ(result.endUs, 3001);
}

TEST(VirtualServe, TwoSlotsOverlap)
{
    auto schedule = arrivals({{1, "a"}, {2, "a"}, {3, "a"}});
    auto config = fixedService(1.0);
    config.slots = 2;
    auto result = runVirtualServe(schedule, nullptr, config, nullptr);
    // First two run in parallel; the third waits for the first slot.
    EXPECT_EQ(result.records[0].completionUs, 1001);
    EXPECT_EQ(result.records[1].completionUs, 1002);
    EXPECT_EQ(result.records[2].dispatchUs, 1001);
    EXPECT_EQ(result.records[2].completionUs, 2001);
}

TEST(VirtualServe, QueueOverflowRejects)
{
    // Burst of 6 arrivals into depth-2 queue with slow service: the
    // first occupies the slot, two queue, the rest bounce.
    auto schedule = arrivals(
        {{1, "a"}, {2, "a"}, {3, "a"}, {4, "a"}, {5, "a"}, {6, "a"}});
    auto config = fixedService(10.0);
    config.admission.maxDepth = 2;
    ServeMetrics metrics;
    auto result = runVirtualServe(schedule, nullptr, config, &metrics);
    auto counts = statusCounts(result);
    EXPECT_EQ(counts[RequestStatus::Completed], 3);
    EXPECT_EQ(counts[RequestStatus::RejectedQueueFull], 3);
    EXPECT_EQ(metrics.outcomes(), 6u);
    // Rejected requests resolve instantly (reject-with-reason, no
    // queueing).
    for (const RequestRecord &r : result.records)
        if (r.status == RequestStatus::RejectedQueueFull)
            EXPECT_DOUBLE_EQ(r.totalMs(), 0.0);
}

TEST(VirtualServe, ByteBudgetSheds)
{
    auto schedule = arrivals({{1, "a"}, {2, "a"}, {3, "a"}});
    for (auto &sr : schedule)
        sr.request.costBytes = 600;
    auto config = fixedService(5.0);
    config.admission.byteBudget = 1000; // one in flight + none queued
    auto result = runVirtualServe(schedule, nullptr, config, nullptr);
    auto counts = statusCounts(result);
    EXPECT_EQ(counts[RequestStatus::Completed], 1);
    EXPECT_EQ(counts[RequestStatus::RejectedBytes], 2);
}

TEST(VirtualServe, DeadlineExpiresBeforeDispatchNeverAfter)
{
    // 1 ms service, slot busy until t=1001us; requests 2 and 3 carry a
    // 0.5 ms deadline and expire waiting; request 4's deadline is
    // ample, so it completes even though dispatch happens later.
    auto schedule =
        arrivals({{1, "a"}, {10, "a"}, {20, "a"}, {30, "a"}});
    schedule[1].request.deadlineRelUs = 500;
    schedule[2].request.deadlineRelUs = 500;
    schedule[3].request.deadlineRelUs = 5000;
    auto result =
        runVirtualServe(schedule, nullptr, fixedService(1.0), nullptr);
    ASSERT_EQ(result.records.size(), 4u);
    auto counts = statusCounts(result);
    EXPECT_EQ(counts[RequestStatus::Completed], 2);
    EXPECT_EQ(counts[RequestStatus::Expired], 2);
    for (const RequestRecord &r : result.records) {
        if (r.status != RequestStatus::Expired)
            continue;
        // Expired strictly after the deadline, before any dispatch.
        EXPECT_GT(r.completionUs,
                  r.request.arrivalUs + r.request.deadlineRelUs);
        EXPECT_EQ(r.dispatchUs, 0);
        EXPECT_EQ(r.digest.cycles, 0u);
    }
}

TEST(VirtualServe, DeterministicReplay)
{
    ScheduleConfig sconfig;
    sconfig.seed = 21;
    sconfig.count = 64;
    sconfig.meanGapUs = 100;
    sconfig.tenants = {{"a", 3}, {"b", 1}};
    auto schedule = buildSchedule(sconfig);
    auto config = fixedService(0.3);
    config.admission.maxDepth = 8;
    auto r1 = runVirtualServe(schedule, nullptr, config, nullptr);
    auto r2 = runVirtualServe(schedule, nullptr, config, nullptr);
    ASSERT_EQ(r1.records.size(), r2.records.size());
    for (size_t i = 0; i < r1.records.size(); ++i) {
        EXPECT_EQ(r1.records[i].request.id, r2.records[i].request.id);
        EXPECT_EQ(r1.records[i].status, r2.records[i].status);
        EXPECT_EQ(r1.records[i].completionUs, r2.records[i].completionUs);
    }
    EXPECT_EQ(r1.endUs, r2.endUs);
}

TEST(VirtualServe, SkewedTenantCannotStarveLightTenants)
{
    // "heavy" floods 8:1 against two light tenants; service is slower
    // than the arrival rate, so a deep backlog forms. Fair-share
    // round-robin must keep the light tenants' waiting time near one
    // service quantum while heavy's backlog piles up.
    ScheduleConfig sconfig;
    sconfig.seed = 5;
    sconfig.count = 120;
    // ~2k req/s against 1k req/s service: each light tenant arrives
    // at ~0.2 req/ms, under its 1/3 req/ms fair share of the slot, so
    // only heavy is overloaded.
    sconfig.meanGapUs = 500;
    sconfig.tenants = {{"heavy", 8}, {"light1", 1}, {"light2", 1}};
    auto schedule = buildSchedule(sconfig);
    auto config = fixedService(1.0);
    config.admission.maxDepth = 1000; // no shedding: fairness only
    ServeMetrics metrics;
    auto result = runVirtualServe(schedule, nullptr, config, &metrics);

    std::map<std::string, std::vector<double>> queueMsByTenant;
    for (const RequestRecord &r : result.records) {
        ASSERT_EQ(r.status, RequestStatus::Completed);
        queueMsByTenant[r.request.tenant].push_back(r.queueMs());
    }
    ASSERT_EQ(queueMsByTenant.size(), 3u);
    auto worst = [&](const std::string &tenant) {
        double w = 0;
        for (double v : queueMsByTenant[tenant])
            w = std::max(w, v);
        return w;
    };
    // Light tenants wait at most a few rounds of the active-tenant
    // cycle (3 tenants x 1 ms) regardless of heavy's backlog; heavy's
    // own worst wait grows with its queue. The x5 separation is far
    // outside scheduling noise, so the test is robust yet sharp.
    EXPECT_LT(worst("light1"), 10.0);
    EXPECT_LT(worst("light2"), 10.0);
    EXPECT_GT(worst("heavy"), 50.0);
}

} // namespace
} // namespace grow::serve
