#include <gtest/gtest.h>

#include "sim/event_queue.hpp"

namespace grow {
namespace {

TEST(EventQueue, OrdersByTime)
{
    EventQueue q;
    q.schedule(30, 3);
    q.schedule(10, 1);
    q.schedule(20, 2);
    EXPECT_EQ(q.pop().tag, 1u);
    EXPECT_EQ(q.pop().tag, 2u);
    EXPECT_EQ(q.pop().tag, 3u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TieBreakByInsertionOrder)
{
    EventQueue q;
    q.schedule(5, 100);
    q.schedule(5, 200);
    q.schedule(5, 300);
    EXPECT_EQ(q.pop().tag, 100u);
    EXPECT_EQ(q.pop().tag, 200u);
    EXPECT_EQ(q.pop().tag, 300u);
}

TEST(EventQueue, NextTime)
{
    EventQueue q;
    q.schedule(42, 0);
    q.schedule(7, 0);
    EXPECT_EQ(q.nextTime(), 7u);
}

TEST(EventQueue, SizeTracksContents)
{
    EventQueue q;
    EXPECT_EQ(q.size(), 0u);
    q.schedule(1, 0);
    q.schedule(2, 0);
    EXPECT_EQ(q.size(), 2u);
    q.pop();
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ClearEmpties)
{
    EventQueue q;
    q.schedule(1, 0);
    q.clear();
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PopOnEmptyThrows)
{
    EventQueue q;
    EXPECT_ANY_THROW(q.pop());
    EXPECT_ANY_THROW(q.nextTime());
}

} // namespace
} // namespace grow
