#include <gtest/gtest.h>

#include "sim/histogram.hpp"
#include "util/random.hpp"

namespace grow {
namespace {

TEST(BucketHistogram, PaperFig5Buckets)
{
    // Aggregation buckets from Fig. 5(a): {1, 2, 3-8, 9-16, >16}.
    BucketHistogram h({1, 2, 8, 16});
    h.record(1);
    h.record(2);
    h.record(5);
    h.record(16);
    h.record(100);
    EXPECT_EQ(h.numBuckets(), 5u);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.count(3), 1u);
    EXPECT_EQ(h.count(4), 1u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(BucketHistogram, Labels)
{
    BucketHistogram h({1, 2, 8, 16});
    EXPECT_EQ(h.label(0), "0-1");
    EXPECT_EQ(h.label(1), "2");
    EXPECT_EQ(h.label(2), "3-8");
    EXPECT_EQ(h.label(3), "9-16");
    EXPECT_EQ(h.label(4), ">16");
}

TEST(BucketHistogram, Fractions)
{
    BucketHistogram h({10});
    h.record(1, 3);
    h.record(100, 1);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
}

TEST(BucketHistogram, EmptyFractionsZero)
{
    BucketHistogram h({1});
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(BucketHistogram, BulkRecord)
{
    BucketHistogram h({5});
    h.record(3, 1000);
    EXPECT_EQ(h.count(0), 1000u);
}

TEST(BucketHistogram, RejectsUnsortedBounds)
{
    EXPECT_ANY_THROW(BucketHistogram({5, 3}));
}

TEST(LogHistogram, MeanAndMax)
{
    LogHistogram h;
    for (uint64_t v : {1, 2, 3, 4, 10})
        h.record(v);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.maxValue(), 10u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(LogHistogram, BucketsArePowersOfTwo)
{
    LogHistogram h;
    h.record(1); // bucket 0
    h.record(2); // bucket 1
    h.record(3); // bucket 1
    h.record(4); // bucket 2
    h.record(7); // bucket 2
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 2u);
}

TEST(LogHistogram, PowerLawAlphaRecovery)
{
    // Sample from a discrete power law with alpha ~ 2.5 and check the
    // MLE recovers it within tolerance.
    Rng rng(123);
    LogHistogram h;
    for (int i = 0; i < 200000; ++i) {
        double x = rng.pareto(1.5, 1.0); // alpha = shape + 1 = 2.5
        h.record(static_cast<uint64_t>(x));
    }
    double alpha = h.powerLawAlpha(2);
    EXPECT_GT(alpha, 2.1);
    EXPECT_LT(alpha, 2.9);
}

TEST(LogHistogram, AlphaZeroWhenTooFewSamples)
{
    LogHistogram h;
    h.record(5);
    EXPECT_DOUBLE_EQ(h.powerLawAlpha(), 0.0);
}

} // namespace
} // namespace grow
