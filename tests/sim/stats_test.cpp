#include <gtest/gtest.h>

#include "sim/stats.hpp"

namespace grow {
namespace {

TEST(StatRegistry, AddAndGet)
{
    StatRegistry r;
    EXPECT_EQ(r.get("x"), 0.0);
    r.add("x", 2.5);
    r.add("x", 1.5);
    EXPECT_DOUBLE_EQ(r.get("x"), 4.0);
}

TEST(StatRegistry, SetOverwrites)
{
    StatRegistry r;
    r.add("x", 10);
    r.set("x", 3);
    EXPECT_DOUBLE_EQ(r.get("x"), 3.0);
}

TEST(StatRegistry, Has)
{
    StatRegistry r;
    EXPECT_FALSE(r.has("a"));
    r.add("a", 0);
    EXPECT_TRUE(r.has("a"));
}

TEST(StatRegistry, SnapshotDiff)
{
    StatRegistry r;
    r.add("dram.bytes", 100);
    auto before = r.snapshot();
    r.add("dram.bytes", 50);
    r.add("cache.hits", 7);
    auto after = r.snapshot();
    auto d = StatRegistry::diff(before, after);
    EXPECT_DOUBLE_EQ(d["dram.bytes"], 50.0);
    EXPECT_DOUBLE_EQ(d["cache.hits"], 7.0);
}

TEST(StatRegistry, ClearResets)
{
    StatRegistry r;
    r.add("x", 1);
    r.clear();
    EXPECT_FALSE(r.has("x"));
}

TEST(StatRegistry, DumpFiltersByPrefix)
{
    StatRegistry r;
    r.add("a.one", 1);
    r.add("b.two", 2);
    std::string s = r.dump("a.");
    EXPECT_NE(s.find("a.one"), std::string::npos);
    EXPECT_EQ(s.find("b.two"), std::string::npos);
}

} // namespace
} // namespace grow
