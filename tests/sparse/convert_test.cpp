#include <gtest/gtest.h>

#include "sparse/convert.hpp"
#include "util/random.hpp"

namespace grow::sparse {
namespace {

TEST(Convert, ToDenseValuesMatch)
{
    CooMatrix coo(2, 3);
    coo.add(0, 2, 5.5);
    coo.add(1, 0, -1.25);
    coo.canonicalize();
    auto csr = CsrMatrix::fromCoo(coo);
    auto d = toDense(csr);
    EXPECT_DOUBLE_EQ(d.at(0, 2), 5.5);
    EXPECT_DOUBLE_EQ(d.at(1, 0), -1.25);
    EXPECT_DOUBLE_EQ(d.at(0, 0), 0.0);
}

TEST(Convert, ToCsrEpsilonFilters)
{
    DenseMatrix d(2, 2);
    d.at(0, 0) = 1e-12;
    d.at(1, 1) = 1.0;
    auto m = toCsr(d, 1e-9);
    EXPECT_EQ(m.nnz(), 1u);
}

TEST(Convert, RandomDenseInRange)
{
    Rng rng(3);
    auto d = randomDense(20, 20, rng);
    for (uint32_t r = 0; r < 20; ++r) {
        for (uint32_t c = 0; c < 20; ++c) {
            EXPECT_GE(d.at(r, c), -1.0);
            EXPECT_LT(d.at(r, c), 1.0);
        }
    }
}

TEST(Convert, RandomCsrFullDensityIsDense)
{
    Rng rng(4);
    auto m = randomCsr(10, 10, 1.0, rng);
    EXPECT_EQ(m.nnz(), 100u);
}

TEST(Convert, RandomCsrZeroDensityIsEmpty)
{
    Rng rng(5);
    auto m = randomCsr(10, 10, 0.0, rng);
    EXPECT_EQ(m.nnz(), 0u);
    EXPECT_TRUE(m.validate());
}

TEST(Convert, RandomCsrDeterministicPerSeed)
{
    Rng a(6), b(6);
    auto m1 = randomCsr(50, 50, 0.2, a);
    auto m2 = randomCsr(50, 50, 0.2, b);
    EXPECT_EQ(m1.colIdx(), m2.colIdx());
}

} // namespace
} // namespace grow::sparse
