#include <gtest/gtest.h>

#include "sparse/convert.hpp"
#include "sparse/coo_matrix.hpp"
#include "sparse/csc_matrix.hpp"
#include "sparse/csr_matrix.hpp"
#include "util/random.hpp"

namespace grow::sparse {
namespace {

CooMatrix
smallCoo()
{
    CooMatrix coo(3, 4);
    coo.add(0, 1, 1.0);
    coo.add(0, 3, 2.0);
    coo.add(2, 0, 3.0);
    coo.add(2, 2, 4.0);
    coo.canonicalize();
    return coo;
}

TEST(CooMatrix, CanonicalizeSortsAndMerges)
{
    CooMatrix coo(2, 2);
    coo.add(1, 1, 1.0);
    coo.add(0, 0, 2.0);
    coo.add(1, 1, 3.0);
    EXPECT_FALSE(coo.canonical());
    coo.canonicalize();
    EXPECT_TRUE(coo.canonical());
    ASSERT_EQ(coo.nnz(), 2u);
    EXPECT_EQ(coo.triples()[0].row, 0u);
    EXPECT_DOUBLE_EQ(coo.triples()[1].value, 4.0);
}

TEST(CooMatrix, OutOfBoundsRejected)
{
    CooMatrix coo(2, 2);
    EXPECT_ANY_THROW(coo.add(2, 0, 1.0));
    EXPECT_ANY_THROW(coo.add(0, 2, 1.0));
}

TEST(CsrMatrix, FromCooStructure)
{
    auto m = CsrMatrix::fromCoo(smallCoo());
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.nnz(), 4u);
    EXPECT_EQ(m.rowNnz(0), 2u);
    EXPECT_EQ(m.rowNnz(1), 0u);
    EXPECT_EQ(m.rowNnz(2), 2u);
    EXPECT_TRUE(m.validate());
    auto cols = m.rowCols(0);
    EXPECT_EQ(cols[0], 1u);
    EXPECT_EQ(cols[1], 3u);
}

TEST(CsrMatrix, Density)
{
    auto m = CsrMatrix::fromCoo(smallCoo());
    EXPECT_DOUBLE_EQ(m.density(), 4.0 / 12.0);
}

TEST(CsrMatrix, TransposedTwiceIsIdentity)
{
    Rng rng(5);
    auto m = randomCsr(17, 23, 0.2, rng);
    auto tt = m.transposed().transposed();
    ASSERT_EQ(tt.rows(), m.rows());
    ASSERT_EQ(tt.nnz(), m.nnz());
    EXPECT_EQ(tt.rowPtr(), m.rowPtr());
    EXPECT_EQ(tt.colIdx(), m.colIdx());
    for (size_t i = 0; i < m.values().size(); ++i)
        EXPECT_DOUBLE_EQ(tt.values()[i], m.values()[i]);
}

TEST(CsrMatrix, StreamBytes)
{
    auto m = CsrMatrix::fromCoo(smallCoo());
    EXPECT_EQ(m.streamBytes(), 4 * 12 + 3 * 8u);
}

TEST(CsrMatrix, PermutedSymmetricPreservesStructure)
{
    // 3-node path graph 0-1-2 with values.
    CooMatrix coo(3, 3);
    coo.add(0, 1, 1.0);
    coo.add(1, 0, 1.0);
    coo.add(1, 2, 2.0);
    coo.add(2, 1, 2.0);
    coo.canonicalize();
    auto m = CsrMatrix::fromCoo(coo);
    // Reverse node order.
    auto p = m.permutedSymmetric({2, 1, 0});
    EXPECT_TRUE(p.validate());
    EXPECT_EQ(p.nnz(), m.nnz());
    // New node 0 = old node 2: connected to old 1 = new 1 with value 2.
    auto cols = p.rowCols(0);
    auto vals = p.rowVals(0);
    ASSERT_EQ(cols.size(), 1u);
    EXPECT_EQ(cols[0], 1u);
    EXPECT_DOUBLE_EQ(vals[0], 2.0);
}

TEST(CsrMatrix, PermutedSymmetricRejectsBadPermutation)
{
    Rng rng(6);
    auto m = randomCsr(4, 4, 0.5, rng);
    EXPECT_ANY_THROW(m.permutedSymmetric({0, 0, 1, 2}));
    EXPECT_ANY_THROW(m.permutedSymmetric({0, 1}));
}

TEST(CscMatrix, FromCooStructure)
{
    auto m = CscMatrix::fromCoo(smallCoo());
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.nnz(), 4u);
    EXPECT_EQ(m.colNnz(0), 1u);
    EXPECT_EQ(m.colNnz(1), 1u);
    EXPECT_EQ(m.colNnz(2), 1u);
    EXPECT_EQ(m.colNnz(3), 1u);
    EXPECT_TRUE(m.validate());
    EXPECT_EQ(m.colRows(0)[0], 2u);
}

TEST(CscMatrix, FromCsrMatchesFromCoo)
{
    Rng rng(7);
    auto csr = randomCsr(31, 19, 0.15, rng);
    auto viaCsr = CscMatrix::fromCsr(csr);
    EXPECT_TRUE(viaCsr.validate());
    EXPECT_EQ(viaCsr.nnz(), csr.nnz());
    // Round-trip back to CSR and compare exactly.
    auto back = toCsr(viaCsr);
    EXPECT_EQ(back.rowPtr(), csr.rowPtr());
    EXPECT_EQ(back.colIdx(), csr.colIdx());
}

TEST(DenseMatrix, FillAndDensity)
{
    DenseMatrix d(4, 5);
    EXPECT_DOUBLE_EQ(d.density(), 0.0);
    d.fill(2.0);
    EXPECT_DOUBLE_EQ(d.density(), 1.0);
    d.at(0, 0) = 0.0;
    EXPECT_EQ(d.nonZeroCount(), 19u);
}

TEST(DenseMatrix, MaxAbsDiff)
{
    DenseMatrix a(2, 2), b(2, 2);
    a.at(1, 1) = 3.0;
    b.at(1, 1) = 3.5;
    EXPECT_DOUBLE_EQ(DenseMatrix::maxAbsDiff(a, b), 0.5);
}

TEST(DenseMatrix, SizeBytes)
{
    DenseMatrix d(10, 3);
    EXPECT_EQ(d.sizeBytes(), 10u * 3 * 8);
}

/** Round-trip sweep: CSR <-> dense <-> CSC across shapes/densities. */
class RoundTripSweep
    : public ::testing::TestWithParam<std::tuple<int, int, double>>
{
};

TEST_P(RoundTripSweep, CsrDenseCscRoundTrip)
{
    auto [rows, cols, density] = GetParam();
    Rng rng(rows * 1000 + cols);
    auto csr = randomCsr(rows, cols, density, rng);
    EXPECT_TRUE(csr.validate());

    auto dense = toDense(csr);
    auto back = toCsr(dense);
    EXPECT_EQ(back.nnz(), csr.nnz());
    EXPECT_EQ(back.colIdx(), csr.colIdx());

    auto csc = toCsc(csr);
    EXPECT_TRUE(csc.validate());
    auto dense2 = toDense(csc);
    EXPECT_DOUBLE_EQ(DenseMatrix::maxAbsDiff(dense, dense2), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RoundTripSweep,
    ::testing::Values(std::tuple{1, 1, 1.0}, std::tuple{5, 5, 0.0},
                      std::tuple{16, 16, 0.1}, std::tuple{64, 8, 0.5},
                      std::tuple{8, 64, 0.9}, std::tuple{100, 100, 0.01},
                      std::tuple{37, 53, 0.25}));

/** randomCsr should hit its target density (law of large numbers). */
class DensitySweep : public ::testing::TestWithParam<double>
{
};

TEST_P(DensitySweep, EmpiricalDensityNearTarget)
{
    double target = GetParam();
    Rng rng(99);
    auto m = randomCsr(300, 300, target, rng);
    EXPECT_NEAR(m.density(), target, 0.02 + target * 0.05);
    EXPECT_TRUE(m.validate());
}

INSTANTIATE_TEST_SUITE_P(Densities, DensitySweep,
                         ::testing::Values(0.0, 0.01, 0.1, 0.39, 0.78,
                                           0.99, 1.0));

} // namespace
} // namespace grow::sparse
