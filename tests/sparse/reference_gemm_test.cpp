#include <gtest/gtest.h>

#include "sparse/convert.hpp"
#include "sparse/reference_gemm.hpp"
#include "util/random.hpp"

namespace grow::sparse {
namespace {

TEST(ReferenceSpMM, HandComputedExample)
{
    // S = [[2, 0], [0, 3]], D = [[1, 2], [3, 4]].
    CooMatrix coo(2, 2);
    coo.add(0, 0, 2.0);
    coo.add(1, 1, 3.0);
    coo.canonicalize();
    auto s = CsrMatrix::fromCoo(coo);
    DenseMatrix d(2, 2);
    d.at(0, 0) = 1;
    d.at(0, 1) = 2;
    d.at(1, 0) = 3;
    d.at(1, 1) = 4;
    auto c = referenceSpMM(s, d);
    EXPECT_DOUBLE_EQ(c.at(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(c.at(0, 1), 4.0);
    EXPECT_DOUBLE_EQ(c.at(1, 0), 9.0);
    EXPECT_DOUBLE_EQ(c.at(1, 1), 12.0);
}

TEST(ReferenceSpMM, MatchesDenseGemm)
{
    Rng rng(11);
    auto s = randomCsr(23, 17, 0.3, rng);
    auto d = randomDense(17, 9, rng);
    auto viaSparse = referenceSpMM(s, d);
    auto viaDense = referenceGemm(toDense(s), d);
    EXPECT_LT(DenseMatrix::maxAbsDiff(viaSparse, viaDense), 1e-12);
}

TEST(ReferenceSpMM, ShapeMismatchRejected)
{
    Rng rng(12);
    auto s = randomCsr(4, 5, 0.5, rng);
    DenseMatrix d(4, 3); // wrong inner dim
    EXPECT_ANY_THROW(referenceSpMM(s, d));
}

TEST(ReferenceSpGemm, MatchesDensePath)
{
    Rng rng(13);
    auto a = randomCsr(14, 21, 0.25, rng);
    auto b = randomCsr(21, 11, 0.3, rng);
    auto viaSparse = toDense(referenceSpGemm(a, b));
    auto viaDense = referenceGemm(toDense(a), toDense(b));
    EXPECT_LT(DenseMatrix::maxAbsDiff(viaSparse, viaDense), 1e-12);
}

TEST(Relu, ClampsNegatives)
{
    DenseMatrix d(1, 3);
    d.at(0, 0) = -2.0;
    d.at(0, 1) = 0.0;
    d.at(0, 2) = 3.0;
    auto r = relu(d);
    EXPECT_DOUBLE_EQ(r.at(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(r.at(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(r.at(0, 2), 3.0);
}

TEST(MacCounts, DenseCase)
{
    // Fully dense A (n x n) and X (n x f): closed forms apply.
    Rng rng(14);
    const uint32_t n = 8, f = 6, w = 4;
    auto a = randomCsr(n, n, 1.0, rng);
    auto x = randomCsr(n, f, 1.0, rng);
    auto counts = countMacsBothOrders(a, x, w);
    // (A*X): n*n rows sum nnz(X row k)=f each -> n*n*f; then n*f*w.
    EXPECT_EQ(counts.axThenW, static_cast<uint64_t>(n) * n * f +
                                  static_cast<uint64_t>(n) * f * w);
    // (X*W): n*f*w ; A*(XW): n*n*w.
    EXPECT_EQ(counts.xwThenA, static_cast<uint64_t>(n) * f * w +
                                  static_cast<uint64_t>(n) * n * w);
}

TEST(MacCounts, SparseAFavoursXwOrder)
{
    // The paper's Fig. 2: with sparse A and small W, A*(XW) needs far
    // fewer MACs than (A*X)*W on GCN-shaped problems.
    Rng rng(15);
    const uint32_t n = 400, f = 64, w = 16;
    auto a = randomCsr(n, n, 0.01, rng);
    auto x = randomCsr(n, f, 0.9, rng);
    auto counts = countMacsBothOrders(a, x, w);
    EXPECT_LT(counts.xwThenA, counts.axThenW);
}

/** MAC-count identity sweep: both orders equal brute-force counts. */
class MacSweep
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(MacSweep, CountsMatchBruteForce)
{
    auto [densA, densX] = GetParam();
    Rng rng(16);
    const uint32_t n = 60, f = 12, w = 5;
    auto a = randomCsr(n, n, densA, rng);
    auto x = randomCsr(n, f, densX, rng);
    auto counts = countMacsBothOrders(a, x, w);

    uint64_t ax = 0;
    for (uint32_t r = 0; r < n; ++r)
        for (NodeId k : a.rowCols(r))
            ax += x.rowNnz(k);
    EXPECT_EQ(counts.axThenW, ax + static_cast<uint64_t>(n) * f * w);
    EXPECT_EQ(counts.xwThenA, x.nnz() * w + a.nnz() * w);
}

INSTANTIATE_TEST_SUITE_P(
    Densities, MacSweep,
    ::testing::Values(std::tuple{0.01, 0.1}, std::tuple{0.1, 1.0},
                      std::tuple{0.5, 0.5}, std::tuple{1.0, 0.05}));

} // namespace
} // namespace grow::sparse
