#include <gtest/gtest.h>

#include "sparse/convert.hpp"
#include "sparse/tiling.hpp"
#include "util/random.hpp"

namespace grow::sparse {
namespace {

TEST(TileGridStats, CountsMatchBruteForce)
{
    Rng rng(21);
    auto m = randomCsr(37, 53, 0.1, rng);
    TileShape shape{8, 16};
    auto stats = TileGridStats::compute(m, shape);
    ASSERT_EQ(stats.rowTiles(), 5u);
    ASSERT_EQ(stats.colTiles(), 4u);

    // Brute force per-tile census.
    std::vector<uint32_t> expect(5 * 4, 0);
    for (uint32_t r = 0; r < m.rows(); ++r)
        for (NodeId c : m.rowCols(r))
            expect[(r / 8) * 4 + c / 16] += 1;
    for (uint32_t mt = 0; mt < 5; ++mt)
        for (uint32_t kt = 0; kt < 4; ++kt)
            EXPECT_EQ(stats.nnzAt(mt, kt), expect[mt * 4 + kt]);
    EXPECT_EQ(stats.totalNnz(), m.nnz());
}

TEST(TileGridStats, CscAndCsrAgree)
{
    Rng rng(22);
    auto csr = randomCsr(64, 48, 0.07, rng);
    auto csc = toCsc(csr);
    TileShape shape{16, 8};
    auto a = TileGridStats::compute(csr, shape);
    auto b = TileGridStats::compute(csc, shape);
    ASSERT_EQ(a.rowTiles(), b.rowTiles());
    ASSERT_EQ(a.colTiles(), b.colTiles());
    for (uint32_t mt = 0; mt < a.rowTiles(); ++mt)
        for (uint32_t kt = 0; kt < a.colTiles(); ++kt)
            EXPECT_EQ(a.nnzAt(mt, kt), b.nnzAt(mt, kt));
}

TEST(TileGridStats, NonEmptyTiles)
{
    CooMatrix coo(8, 8);
    coo.add(0, 0, 1.0);
    coo.add(7, 7, 1.0);
    coo.canonicalize();
    auto m = CsrMatrix::fromCoo(coo);
    auto stats = TileGridStats::compute(m, TileShape{4, 4});
    EXPECT_EQ(stats.nonEmptyTiles(), 2u);
}

TEST(TileGridStats, HistogramSkipsEmptyTiles)
{
    CooMatrix coo(8, 8);
    coo.add(0, 0, 1.0);
    coo.add(0, 1, 1.0);
    coo.canonicalize();
    auto m = CsrMatrix::fromCoo(coo);
    auto stats = TileGridStats::compute(m, TileShape{4, 4});
    auto h = stats.nnzHistogram({1, 2, 8, 16});
    EXPECT_EQ(h.total(), 1u); // only one non-empty tile
    EXPECT_EQ(h.count(1), 1u); // with exactly 2 nnz
}

TEST(TileFetchModel, EmptyTileIsFree)
{
    EXPECT_EQ(TileFetchModel::fetchedBytes(0), 0u);
    EXPECT_EQ(TileFetchModel::effectualBytes(0), 0u);
}

TEST(TileFetchModel, SingleNonZeroWorstCase)
{
    // 1 nnz: 64 B values line + 64 B index line + 64 B descriptor.
    EXPECT_EQ(TileFetchModel::fetchedBytes(1), 192u);
    EXPECT_EQ(TileFetchModel::effectualBytes(1), 12u);
    // This is the paper's "<6%" worst-case utilization (Sec. IV-B).
    EXPECT_NEAR(12.0 / 192.0, 0.0625, 1e-9);
}

TEST(TileFetchModel, DenseTileNearsFullUtilization)
{
    uint64_t nnz = 4096;
    double util =
        static_cast<double>(TileFetchModel::effectualBytes(nnz)) /
        static_cast<double>(TileFetchModel::fetchedBytes(nnz));
    EXPECT_GT(util, 0.97);
}

TEST(TileFetchModel, MonotonicInNnz)
{
    for (uint64_t nnz = 1; nnz < 200; ++nnz) {
        EXPECT_LE(TileFetchModel::fetchedBytes(nnz),
                  TileFetchModel::fetchedBytes(nnz + 1));
        EXPECT_GE(TileFetchModel::fetchedBytes(nnz),
                  TileFetchModel::effectualBytes(nnz));
    }
}

TEST(TileFetchTotals, UtilizationBounds)
{
    Rng rng(23);
    auto m = randomCsr(128, 128, 0.02, rng);
    auto stats = TileGridStats::compute(m, TileShape{32, 32});
    auto totals = tileFetchTotals(stats);
    EXPECT_GT(totals.utilization(), 0.0);
    EXPECT_LE(totals.utilization(), 1.0);
    EXPECT_EQ(totals.effectual, m.nnz() * 12);
}

TEST(RowStreamFetch, NearPerfectForCsrStreaming)
{
    // GROW's 1-D row streaming (Fig. 10(c)): utilization approaches 1
    // for any reasonably large matrix because the stream is contiguous.
    Rng rng(24);
    auto m = randomCsr(256, 256, 0.05, rng);
    auto totals = rowStreamFetchTotals(m);
    EXPECT_GT(totals.utilization(), 0.85);
    EXPECT_LE(totals.utilization(), 1.0);
}

TEST(RowStreamVsTiles, PaperFig10Contrast)
{
    // Hypersparse matrix: 2-D tiles waste most of each line while the
    // 1-D row stream stays dense -- the core motivation contrast.
    Rng rng(25);
    auto m = randomCsr(512, 512, 0.002, rng);
    auto tiled = tileFetchTotals(TileGridStats::compute(
        m, TileShape{64, 16}));
    auto streamed = rowStreamFetchTotals(m);
    EXPECT_LT(tiled.utilization(), 0.25);
    EXPECT_GT(streamed.utilization(), 0.7);
}

/** Tile-shape sweep: totals conserve nnz regardless of shape. */
class TileShapeSweep
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>>
{
};

TEST_P(TileShapeSweep, NnzConserved)
{
    auto [tr, tc] = GetParam();
    Rng rng(26);
    auto m = randomCsr(100, 80, 0.08, rng);
    auto stats = TileGridStats::compute(m, TileShape{tr, tc});
    EXPECT_EQ(stats.totalNnz(), m.nnz());
    auto h = stats.nnzHistogram({1, 2, 8, 16});
    uint64_t histTotal = 0;
    for (size_t i = 0; i < h.numBuckets(); ++i)
        histTotal += h.count(i);
    EXPECT_EQ(histTotal, stats.nonEmptyTiles());
}

INSTANTIATE_TEST_SUITE_P(Shapes, TileShapeSweep,
                         ::testing::Values(std::pair{1u, 1u},
                                           std::pair{7u, 13u},
                                           std::pair{16u, 16u},
                                           std::pair{100u, 80u},
                                           std::pair{128u, 128u}));

} // namespace
} // namespace grow::sparse
