/**
 * @file
 * Arena bump allocator + fixed-capacity RingBuffer: alignment and
 * exhaustion of the arena, FIFO order across power-of-two wraparound,
 * and the growth-rejection contract (push beyond capacity asserts
 * instead of reallocating behind outstanding references).
 */
#include <gtest/gtest.h>

#include "util/arena.hpp"

#include <cstdint>
#include <stdexcept>

namespace grow::util {
namespace {

TEST(Arena, CeilPow2RoundsUpWithMinimumOne)
{
    EXPECT_EQ(ceilPow2(0), 1u);
    EXPECT_EQ(ceilPow2(1), 1u);
    EXPECT_EQ(ceilPow2(2), 2u);
    EXPECT_EQ(ceilPow2(3), 4u);
    EXPECT_EQ(ceilPow2(8), 8u);
    EXPECT_EQ(ceilPow2(9), 16u);
    EXPECT_EQ(ceilPow2(1000), 1024u);
}

TEST(Arena, AllocRespectsAlignmentAndTracksUsage)
{
    Arena arena(256);
    EXPECT_EQ(arena.capacity(), 256u);
    EXPECT_EQ(arena.used(), 0u);

    uint8_t *a = arena.alloc<uint8_t>(3);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(arena.used(), 3u);

    // The next allocation must be aligned for its type even though the
    // bump pointer sits at an odd offset.
    uint64_t *b = arena.alloc<uint64_t>(2);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % alignof(uint64_t), 0u);
    EXPECT_EQ(arena.used(), 8u + 2 * sizeof(uint64_t));

    // Distinct allocations never overlap.
    b[0] = 0x1122334455667788ULL;
    a[0] = 0xFF;
    EXPECT_EQ(b[0], 0x1122334455667788ULL);
}

TEST(Arena, ExhaustionAssertsInsteadOfReturningNull)
{
    Arena arena(16);
    (void)arena.alloc<uint8_t>(16);
    EXPECT_THROW(arena.alloc<uint8_t>(1), std::logic_error);
}

TEST(RingBuffer, FifoOrderAcrossWraparound)
{
    // min_capacity 5 rounds to 8; cycling 3-in 3-out drives head and
    // tail through several mask wraps while order must hold.
    RingBuffer<int> ring(5);
    EXPECT_EQ(ring.capacity(), 8u);
    EXPECT_TRUE(ring.empty());

    int next_in = 0, next_out = 0;
    for (int cycle = 0; cycle < 20; ++cycle) {
        for (int i = 0; i < 3; ++i)
            ring.push_back(next_in++);
        ASSERT_EQ(ring.size(), 3u);
        EXPECT_EQ(ring.front(), next_out);
        EXPECT_EQ(ring.back(), next_in - 1);
        for (size_t i = 0; i < ring.size(); ++i)
            EXPECT_EQ(ring[i], next_out + static_cast<int>(i));
        for (int i = 0; i < 3; ++i) {
            EXPECT_EQ(ring.front(), next_out++);
            ring.pop_front();
        }
    }
    EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, GrowthAndUnderflowAreRejected)
{
    RingBuffer<int> ring(2);
    ring.push_back(1);
    ring.push_back(2);
    EXPECT_TRUE(ring.full());
    EXPECT_THROW(ring.push_back(3), std::logic_error);

    ring.pop_front();
    ring.pop_front();
    EXPECT_THROW(ring.pop_front(), std::logic_error);
    EXPECT_THROW(ring[0], std::logic_error);
}

TEST(RingBuffer, ClearResetsWithoutTouchingCapacity)
{
    RingBuffer<int> ring(4);
    ring.push_back(7);
    ring.push_back(8);
    ring.clear();
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), 4u);
    ring.push_back(9);
    EXPECT_EQ(ring.front(), 9);
}

TEST(RingBuffer, ArenaBackedStorageBehavesLikeHeapBacked)
{
    Arena arena(ceilPow2(6) * sizeof(uint32_t) +
                alignof(std::max_align_t));
    RingBuffer<uint32_t> ring(arena, 6);
    EXPECT_EQ(ring.capacity(), 8u);
    for (uint32_t i = 0; i < 8; ++i)
        ring.push_back(i * 10);
    EXPECT_TRUE(ring.full());
    for (uint32_t i = 0; i < 8; ++i) {
        EXPECT_EQ(ring.front(), i * 10);
        ring.pop_front();
    }
    EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, DefaultConstructedIsEmptyWithZeroCapacity)
{
    RingBuffer<int> ring;
    EXPECT_EQ(ring.capacity(), 0u);
    EXPECT_TRUE(ring.empty());
    EXPECT_THROW(ring.push_back(1), std::logic_error);
}

} // namespace
} // namespace grow::util
