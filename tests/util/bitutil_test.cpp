#include <gtest/gtest.h>

#include "util/bitutil.hpp"

namespace grow {
namespace {

TEST(BitUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0u);
    EXPECT_EQ(ceilDiv(1, 4), 1u);
    EXPECT_EQ(ceilDiv(4, 4), 1u);
    EXPECT_EQ(ceilDiv(5, 4), 2u);
    EXPECT_EQ(ceilDiv(63, 64), 1u);
    EXPECT_EQ(ceilDiv(65, 64), 2u);
}

TEST(BitUtil, RoundUp)
{
    EXPECT_EQ(roundUp(0, 64), 0u);
    EXPECT_EQ(roundUp(1, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundUp(65, 64), 128u);
}

TEST(BitUtil, RoundDown)
{
    EXPECT_EQ(roundDown(0, 64), 0u);
    EXPECT_EQ(roundDown(63, 64), 0u);
    EXPECT_EQ(roundDown(64, 64), 64u);
    EXPECT_EQ(roundDown(130, 64), 128u);
}

TEST(BitUtil, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ULL << 40));
    EXPECT_FALSE(isPow2((1ULL << 40) + 1));
}

TEST(BitUtil, NextPow2)
{
    EXPECT_EQ(nextPow2(1), 1u);
    EXPECT_EQ(nextPow2(2), 2u);
    EXPECT_EQ(nextPow2(3), 4u);
    EXPECT_EQ(nextPow2(1000), 1024u);
}

TEST(BitUtil, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(1024), 10u);
    EXPECT_EQ(log2Floor(1025), 10u);
}

/** Round-trip property: roundDown <= x <= roundUp, both multiples. */
class RoundSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RoundSweep, RoundingInvariants)
{
    uint64_t b = GetParam();
    for (uint64_t x : {0ULL, 1ULL, 7ULL, 63ULL, 64ULL, 100ULL, 4095ULL,
                       1000000ULL}) {
        EXPECT_LE(roundDown(x, b), x);
        EXPECT_GE(roundUp(x, b), x);
        EXPECT_EQ(roundDown(x, b) % b, 0u);
        EXPECT_EQ(roundUp(x, b) % b, 0u);
        EXPECT_LT(roundUp(x, b) - roundDown(x, b), 2 * b);
    }
}

INSTANTIATE_TEST_SUITE_P(Bases, RoundSweep,
                         ::testing::Values(1, 3, 8, 64, 4096));

} // namespace
} // namespace grow
