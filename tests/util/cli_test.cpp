#include <gtest/gtest.h>

#include "util/cli.hpp"

namespace grow {
namespace {

CliArgs
makeArgs(std::vector<std::string> items)
{
    std::vector<char *> argv;
    static std::vector<std::string> storage;
    storage = std::move(items);
    argv.push_back(const_cast<char *>("prog"));
    for (auto &s : storage)
        argv.push_back(const_cast<char *>(s.c_str()));
    return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, ParsesKeyValues)
{
    auto args = makeArgs({"scale=mini", "seed=42"});
    EXPECT_TRUE(args.has("scale"));
    EXPECT_EQ(args.get("scale", "x"), "mini");
    EXPECT_EQ(args.getInt("seed", 0), 42);
}

TEST(CliArgs, DefaultsWhenMissing)
{
    auto args = makeArgs({});
    EXPECT_FALSE(args.has("scale"));
    EXPECT_EQ(args.get("scale", "mini"), "mini");
    EXPECT_EQ(args.getInt("n", 7), 7);
    EXPECT_DOUBLE_EQ(args.getDouble("d", 1.5), 1.5);
    EXPECT_TRUE(args.getBool("b", true));
}

TEST(CliArgs, ParsesBooleans)
{
    auto args = makeArgs({"a=true", "b=0", "c=yes", "d=off"});
    EXPECT_TRUE(args.getBool("a", false));
    EXPECT_FALSE(args.getBool("b", true));
    EXPECT_TRUE(args.getBool("c", false));
    EXPECT_FALSE(args.getBool("d", true));
}

TEST(CliArgs, ParsesLists)
{
    auto args = makeArgs({"datasets=cora, reddit ,yelp"});
    auto list = args.getList("datasets", {});
    ASSERT_EQ(list.size(), 3u);
    EXPECT_EQ(list[0], "cora");
    EXPECT_EQ(list[1], "reddit");
    EXPECT_EQ(list[2], "yelp");
}

TEST(CliArgs, IgnoresDashDashFlags)
{
    auto args = makeArgs({"--benchmark_filter=all", "k=1"});
    EXPECT_EQ(args.getInt("k", 0), 1);
}

TEST(CliArgs, RejectsPositionalArguments)
{
    EXPECT_ANY_THROW(makeArgs({"justaword"}));
}

TEST(CliArgs, RejectsBadBoolean)
{
    auto args = makeArgs({"b=maybe"});
    EXPECT_ANY_THROW(args.getBool("b", false));
}

TEST(CliArgs, RequireKnownRejectsTyposWithAcceptedKeyList)
{
    // A typo like `cachdir=` must abort instead of silently dropping
    // the option (it used to just disable the disk cache).
    auto args = makeArgs({"cachdir=/tmp/x", "scale=mini"});
    try {
        args.requireKnown({"scale", "cachedir", "datasets"});
        FAIL() << "expected fatal()";
    } catch (const std::exception &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("cachdir"), std::string::npos);
        // The accepted keys are listed, sorted.
        EXPECT_NE(msg.find("cachedir, datasets, scale"),
                  std::string::npos);
        // The known key is not reported as unknown.
        EXPECT_EQ(msg.find("unknown argument(s): cachdir,"),
                  std::string::npos);
    }
}

TEST(CliArgs, RequireKnownAcceptsKnownKeysAndIgnoresDashFlags)
{
    auto args = makeArgs({"scale=mini", "--benchmark_filter=x"});
    EXPECT_NO_THROW(args.requireKnown({"scale"}));
    EXPECT_NO_THROW(makeArgs({}).requireKnown({}));
}

TEST(CliArgs, WithPrefixStripsThePrefixAndSkipsOthers)
{
    auto args = makeArgs(
        {"tol.ms=0.15", "tol.rows/s=0.2", "tol=0.02", "base=x"});
    auto tols = args.withPrefix("tol.");
    ASSERT_EQ(tols.size(), 2u);
    EXPECT_EQ(tols.at("ms"), "0.15");
    EXPECT_EQ(tols.at("rows/s"), "0.2");
    // The bare `tol=` key is not prefixed, and a suffix-less `tol.=`
    // would not count either.
    EXPECT_EQ(tols.count("tol"), 0u);
    EXPECT_EQ(args.withPrefix("gate.").size(), 0u);
}

TEST(CliArgs, RequireKnownCoversTheDseKeys)
{
    // design_space_sweep grew dse=/pareto=/est=; the example's key set
    // must both accept them and keep rejecting near-miss typos (a
    // dropped `dse=1` would silently skip the whole DSE tier).
    const std::vector<std::string> keys = {
        "dataset", "scale",  "threads", "cachedir", "model", "format",
        "out",     "epoch",  "dse",     "pareto",   "est"};
    auto ok = makeArgs({"dse=1", "pareto=8", "est=1"});
    EXPECT_NO_THROW(ok.requireKnown(keys));
    for (const char *typo : {"des=1", "dse1=1", "paretto=4", "Est=1"}) {
        auto bad = makeArgs({typo});
        EXPECT_ANY_THROW(bad.requireKnown(keys)) << typo;
    }
}

TEST(CliArgs, RequireKnownAcceptsPrefixedKeys)
{
    auto args = makeArgs({"tol.ms=0.15", "base=x"});
    EXPECT_NO_THROW(args.requireKnown({"base"}, {"tol."}));
    // A prefix alone with no suffix is still unknown.
    auto bare = makeArgs({"tol.=0.15"});
    EXPECT_ANY_THROW(bare.requireKnown({"base"}, {"tol."}));
    // Prefixed keys are only accepted when the prefix is declared.
    EXPECT_ANY_THROW(args.requireKnown({"base"}));
    // The accepted-keys message advertises the prefix form.
    try {
        makeArgs({"bogus=1"}).requireKnown({"base"}, {"tol."});
        FAIL() << "expected fatal()";
    } catch (const std::exception &e) {
        EXPECT_NE(std::string(e.what()).find("tol.<name>"),
                  std::string::npos);
    }
}

TEST(CliArgs, RequireKnownCoversTheIngestionKeys)
{
    // The out-of-core ingestion PR grew memcap= on every bench and
    // in=/out=/name=/nodes=/dataset=/verify= on graph_convert; the key
    // sets must accept them and keep rejecting near-miss typos (a
    // dropped memcap= would silently run uncapped).
    const std::vector<std::string> benchKeys = {
        "scale",   "datasets", "model", "cachedir", "format",
        "out",     "threads",  "epoch", "profile",  "memcap"};
    auto ok = makeArgs({"memcap=512M", "datasets=file:/tmp/g.growcsr"});
    EXPECT_NO_THROW(ok.requireKnown(benchKeys));
    for (const char *typo : {"memcp=512M", "memcap2=1G", "Memcap=1"}) {
        auto bad = makeArgs({typo});
        EXPECT_ANY_THROW(bad.requireKnown(benchKeys)) << typo;
    }

    const std::vector<std::string> convertKeys = {
        "in", "out", "name", "nodes", "dataset", "scale", "verify"};
    auto conv = makeArgs(
        {"in=edges.txt", "out=g.growcsr", "name=reddit", "nodes=100"});
    EXPECT_NO_THROW(conv.requireKnown(convertKeys));
    auto badConv = makeArgs({"verfy=g.growcsr"});
    EXPECT_ANY_THROW(badConv.requireKnown(convertKeys));
}

} // namespace
} // namespace grow
