/**
 * @file
 * Open-addressing FlatMap: round-trip semantics against the contract
 * std::unordered_map used to provide, tombstone reuse on the probe
 * path, the growth-rejection bound, and compaction staying amortised
 * under full-occupancy FIFO churn (the LDN-table pathology that once
 * rebuilt the table on nearly every insert).
 */
#include <gtest/gtest.h>

#include "util/flat_map.hpp"

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <unordered_map>

namespace grow::util {
namespace {

constexpr uint32_t kEmpty = UINT32_MAX;

TEST(FlatMap, InsertFindEraseRoundTrip)
{
    FlatMap<uint32_t, int> map(8, kEmpty);
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.capacity(), 8u);
    EXPECT_EQ(map.find(3), nullptr);

    map.insert(3, 30);
    map.insert(4, 40);
    ASSERT_NE(map.find(3), nullptr);
    EXPECT_EQ(*map.find(3), 30);
    EXPECT_EQ(*map.find(4), 40);
    EXPECT_EQ(map.size(), 2u);

    // Overwrite keeps the size; insert is upsert.
    map.insert(3, 33);
    EXPECT_EQ(*map.find(3), 33);
    EXPECT_EQ(map.size(), 2u);

    EXPECT_TRUE(map.erase(3));
    EXPECT_EQ(map.find(3), nullptr);
    EXPECT_FALSE(map.erase(3));
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(*map.find(4), 40);
}

TEST(FlatMap, EraseLeavesATombstoneThatInsertReuses)
{
    FlatMap<uint32_t, int> map(8, kEmpty);
    map.insert(5, 50);
    EXPECT_EQ(map.tombstones(), 0u);
    map.erase(5);
    EXPECT_EQ(map.tombstones(), 1u);

    // Re-inserting the same key probes over its own tombstone and
    // reclaims it instead of consuming a fresh Empty slot.
    map.insert(5, 55);
    EXPECT_EQ(map.tombstones(), 0u);
    EXPECT_EQ(*map.find(5), 55);
}

TEST(FlatMap, ErasedKeyOnProbePathDoesNotHideLaterEntries)
{
    // Fill to the live bound so colliding keys chain past each other,
    // then erase keys in the middle of chains: lookups must keep
    // walking past Dead slots.
    constexpr size_t kLive = 64;
    FlatMap<uint32_t, uint32_t> map(kLive, kEmpty);
    for (uint32_t k = 0; k < kLive; ++k)
        map.insert(k, k * 2);
    for (uint32_t k = 0; k < kLive; k += 2)
        EXPECT_TRUE(map.erase(k));
    for (uint32_t k = 0; k < kLive; ++k) {
        if (k % 2 == 0) {
            EXPECT_EQ(map.find(k), nullptr) << k;
        } else {
            ASSERT_NE(map.find(k), nullptr) << k;
            EXPECT_EQ(*map.find(k), k * 2);
        }
    }
}

TEST(FlatMap, GrowthBeyondMaxLiveIsRejected)
{
    FlatMap<uint32_t, int> map(4, kEmpty);
    for (uint32_t k = 0; k < 4; ++k)
        map.insert(k, 0);
    EXPECT_THROW(map.insert(99, 0), std::logic_error);
    // Overwriting a live key is not growth.
    map.insert(2, 7);
    EXPECT_EQ(*map.find(2), 7);
}

TEST(FlatMap, ReservedEmptyKeyIsRejected)
{
    FlatMap<uint32_t, int> map(4, kEmpty);
    EXPECT_THROW(map.insert(kEmpty, 1), std::logic_error);
}

TEST(FlatMap, ClearResetsLiveAndTombstones)
{
    FlatMap<uint32_t, int> map(8, kEmpty);
    map.insert(1, 10);
    map.insert(2, 20);
    map.erase(1);
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.tombstones(), 0u);
    EXPECT_EQ(map.find(2), nullptr);
    map.insert(2, 21);
    EXPECT_EQ(*map.find(2), 21);
}

TEST(FlatMap, FullOccupancyFifoChurnStaysBoundedAndCorrect)
{
    // The LDN-table pattern: the table sits at its live bound while a
    // FIFO evicts the oldest entry to admit each new one. Tombstones
    // must stay below the compaction ceiling (slots are never
    // exhausted) and the map must agree with a reference map
    // throughout -- this is the exact churn that degenerated into a
    // rebuild per insert before the 3/4 threshold.
    constexpr size_t kLive = 256;
    FlatMap<uint32_t, uint32_t> map(kLive, kEmpty);
    std::unordered_map<uint32_t, uint32_t> ref;
    std::deque<uint32_t> fifo;

    uint32_t next = 0;
    for (; next < kLive; ++next) {
        map.insert(next, next ^ 0xABCDu);
        ref.emplace(next, next ^ 0xABCDu);
        fifo.push_back(next);
    }
    for (int churn = 0; churn < 20000; ++churn) {
        const uint32_t victim = fifo.front();
        fifo.pop_front();
        EXPECT_TRUE(map.erase(victim));
        ref.erase(victim);
        map.insert(next, next ^ 0xABCDu);
        ref.emplace(next, next ^ 0xABCDu);
        fifo.push_back(next);
        ++next;

        EXPECT_EQ(map.size(), kLive);
        // live + dead may touch 3/4 of the table right before a
        // compaction fires but never exceed it after an insert.
        EXPECT_LE((map.size() + map.tombstones()) * 4,
                  map.slotCount() * 3);
    }
    for (const auto &[k, v] : ref) {
        ASSERT_NE(map.find(k), nullptr) << k;
        EXPECT_EQ(*map.find(k), v);
    }
    // Spot-check misses after heavy churn.
    EXPECT_EQ(map.find(0), nullptr);
    EXPECT_EQ(map.find(next + 1), nullptr);
}

} // namespace
} // namespace grow::util
