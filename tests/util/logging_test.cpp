#include <gtest/gtest.h>

#include "util/logging.hpp"

namespace grow {
namespace {

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(panic("boom"), std::logic_error);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(fatal("bad config"), std::runtime_error);
}

TEST(Logging, AssertMacroFiresOnFalse)
{
    EXPECT_THROW(GROW_ASSERT(false, "must fire"), std::logic_error);
}

TEST(Logging, AssertMacroSilentOnTrue)
{
    EXPECT_NO_THROW(GROW_ASSERT(1 + 1 == 2, "fine"));
}

TEST(Logging, AssertMessageContainsLocation)
{
    try {
        GROW_ASSERT(false, "xyz-marker");
        FAIL() << "should have thrown";
    } catch (const std::logic_error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("xyz-marker"), std::string::npos);
        EXPECT_NE(msg.find("logging_test"), std::string::npos);
    }
}

TEST(Logging, LevelFiltering)
{
    auto &logger = Logger::instance();
    LogLevel old = logger.level();
    logger.setLevel(LogLevel::Silent);
    // Nothing should be emitted (and nothing should crash).
    logDebug("d");
    logInfo("i");
    logWarn("w");
    logError("e");
    logger.setLevel(old);
    SUCCEED();
}

} // namespace
} // namespace grow
