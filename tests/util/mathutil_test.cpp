#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/mathutil.hpp"

namespace grow {
namespace {

TEST(Geomean, BasicValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-12);
}

TEST(Geomean, EmptyInputIsZero)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Geomean, IsScaleInvariant)
{
    double g = geomean({0.5, 2.0, 3.0});
    double scaled = geomean({5.0, 20.0, 30.0});
    EXPECT_NEAR(scaled, 10.0 * g, 1e-9);
}

TEST(Geomean, RejectsZeroNegativeAndNonFinite)
{
    // A zero speedup would silently produce NaN (log(0) = -inf) and a
    // negative one garbage; both must panic instead of corrupting
    // summary rows.
    EXPECT_ANY_THROW(geomean({1.0, 0.0, 2.0}));
    EXPECT_ANY_THROW(geomean({-1.0}));
    EXPECT_ANY_THROW(geomean({1.0, std::numeric_limits<double>::infinity()}));
    EXPECT_ANY_THROW(
        geomean({std::numeric_limits<double>::quiet_NaN()}));
}

TEST(Geomean, NeverReturnsNaNForValidInput)
{
    auto g = geomean({1e-300, 1e300});
    EXPECT_FALSE(std::isnan(g));
    EXPECT_NEAR(g, 1.0, 1e-6);
}

} // namespace
} // namespace grow
