#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.hpp"

namespace grow {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, BoundedIsUniform)
{
    Rng rng(11);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        counts[rng.bounded(10)] += 1;
    for (int c : counts)
        EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, BoundedOneAlwaysZero)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(5);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 10000; ++i) {
        int64_t v = rng.range(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        sawLo |= v == -2;
        sawHi |= v == 2;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliRate)
{
    Rng rng(17);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ParetoTailHeavierForSmallerAlpha)
{
    Rng rng(19);
    // With shape a, P(X > x) = x^-a: smaller shape -> heavier tail.
    auto meanOf = [&](double alpha) {
        double sum = 0;
        for (int i = 0; i < 50000; ++i)
            sum += std::min(rng.pareto(alpha), 1e6);
        return sum / 50000;
    };
    EXPECT_GT(meanOf(1.2), meanOf(3.0));
}

TEST(Rng, ParetoRespectsMinimum)
{
    Rng rng(23);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.pareto(2.0, 3.5), 3.5);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(29);
    double sum = 0;
    for (int i = 0; i < 50000; ++i)
        sum += rng.exponential(2.0);
    EXPECT_NEAR(sum / 50000, 0.5, 0.02);
}

TEST(Rng, NormalMoments)
{
    Rng rng(31);
    double sum = 0, sq = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        double v = rng.normal(1.0, 2.0);
        sum += v;
        sq += v * v;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 1.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(37);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(AliasTable, SingleCategory)
{
    Rng rng(41);
    AliasTable t(std::vector<double>{5.0});
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(t.sample(rng), 0u);
}

TEST(AliasTable, MatchesWeights)
{
    Rng rng(43);
    std::vector<double> w{1.0, 2.0, 3.0, 4.0};
    AliasTable t(w);
    std::vector<int> counts(4, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        counts[t.sample(rng)] += 1;
    for (int i = 0; i < 4; ++i)
        EXPECT_NEAR(static_cast<double>(counts[i]) / n, w[i] / 10.0, 0.01)
            << "category " << i;
}

TEST(AliasTable, ZeroWeightNeverSampled)
{
    Rng rng(47);
    AliasTable t(std::vector<double>{1.0, 0.0, 1.0});
    for (int i = 0; i < 5000; ++i)
        EXPECT_NE(t.sample(rng), 1u);
}

TEST(AliasTable, RejectsAllZeroWeights)
{
    EXPECT_ANY_THROW(AliasTable(std::vector<double>{0.0, 0.0}));
}

TEST(AliasTable, RejectsNegativeWeights)
{
    EXPECT_ANY_THROW(AliasTable(std::vector<double>{1.0, -0.5}));
}

/** Property sweep: alias sampling matches the weight distribution for
 *  many distribution shapes. */
class AliasSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(AliasSweep, EmpiricalDistributionMatches)
{
    const int k = GetParam();
    Rng wrng(100 + k);
    std::vector<double> w(k);
    double total = 0;
    for (auto &x : w) {
        x = wrng.pareto(1.5);
        total += x;
    }
    AliasTable t(w);
    Rng rng(200 + k);
    std::vector<int> counts(k, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        counts[t.sample(rng)] += 1;
    for (int i = 0; i < k; ++i) {
        double expected = w[i] / total;
        double actual = static_cast<double>(counts[i]) / n;
        EXPECT_NEAR(actual, expected, 0.015 + expected * 0.2)
            << "category " << i << " of " << k;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AliasSweep,
                         ::testing::Values(2, 3, 8, 17, 64, 129));

} // namespace
} // namespace grow
