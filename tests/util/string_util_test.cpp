#include <gtest/gtest.h>

#include "util/string_util.hpp"

namespace grow {
namespace {

TEST(StringUtil, SplitBasic)
{
    auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(StringUtil, SplitKeepsEmptyFields)
{
    auto parts = split(",x,", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "");
    EXPECT_EQ(parts[1], "x");
    EXPECT_EQ(parts[2], "");
}

TEST(StringUtil, Trim)
{
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim("hi"), "hi");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(StringUtil, FmtDouble)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(2.0, 0), "2");
}

TEST(StringUtil, FmtRatio)
{
    EXPECT_EQ(fmtRatio(2.84, 2), "2.84x");
}

TEST(StringUtil, FmtPercent)
{
    EXPECT_EQ(fmtPercent(0.234, 1), "23.4%");
    EXPECT_EQ(fmtPercent(1.0, 0), "100%");
}

TEST(StringUtil, FmtBytes)
{
    EXPECT_EQ(fmtBytes(512), "512 B");
    EXPECT_EQ(fmtBytes(2048), "2.00 KiB");
    EXPECT_EQ(fmtBytes(3 * 1024 * 1024), "3.00 MiB");
}

TEST(StringUtil, FmtCount)
{
    EXPECT_EQ(fmtCount(0), "0");
    EXPECT_EQ(fmtCount(999), "999");
    EXPECT_EQ(fmtCount(1000), "1,000");
    EXPECT_EQ(fmtCount(1234567), "1,234,567");
}

TEST(StringUtil, ToLower)
{
    EXPECT_EQ(toLower("CoRa"), "cora");
    EXPECT_EQ(toLower("GROW-123"), "grow-123");
}

} // namespace
} // namespace grow
