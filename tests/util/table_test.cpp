#include <gtest/gtest.h>

#include "util/table.hpp"

namespace grow {
namespace {

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"bb", "22"});
    std::string s = t.render();
    EXPECT_NE(s.find("== demo =="), std::string::npos);
    EXPECT_NE(s.find("| name"), std::string::npos);
    EXPECT_NE(s.find("| alpha"), std::string::npos);
    EXPECT_NE(s.find("| 22"), std::string::npos);
}

TEST(TextTable, PadsShortRows)
{
    TextTable t("pad");
    t.setHeader({"a", "b", "c"});
    t.addRow({"x"});
    std::string s = t.render();
    // The padded row must have all three column separators.
    size_t lastLine = s.rfind("| x");
    ASSERT_NE(lastLine, std::string::npos);
    std::string row = s.substr(lastLine, s.find('\n', lastLine) - lastLine);
    int pipes = 0;
    for (char c : row)
        pipes += c == '|';
    EXPECT_EQ(pipes, 4);
}

TEST(TextTable, ColumnsAlign)
{
    TextTable t("align");
    t.setHeader({"col", "v"});
    t.addRow({"longer-cell", "1"});
    t.addRow({"s", "2"});
    std::string s = t.render();
    // All table lines must be the same length.
    size_t expected = 0;
    size_t pos = 0;
    while (pos < s.size()) {
        size_t eol = s.find('\n', pos);
        std::string line = s.substr(pos, eol - pos);
        if (!line.empty() && (line[0] == '|' || line[0] == '+')) {
            if (expected == 0)
                expected = line.size();
            EXPECT_EQ(line.size(), expected) << line;
        }
        pos = eol + 1;
    }
}


TEST(TextTable, CsvRendering)
{
    TextTable t("csv");
    t.setHeader({"a", "b"});
    t.addRow({"1", "hello, world"});
    t.addRow({"quote\"inside", "2"});
    std::string csv = t.renderCsv();
    EXPECT_NE(csv.find("a,b\n"), std::string::npos);
    EXPECT_NE(csv.find("1,\"hello, world\"\n"), std::string::npos);
    EXPECT_NE(csv.find("\"quote\"\"inside\",2"), std::string::npos);
}

TEST(TextTable, CsvNoQuotingForPlainCells)
{
    TextTable t("csv2");
    t.setHeader({"x"});
    t.addRow({"plain"});
    EXPECT_EQ(t.renderCsv(), "x\nplain\n");
}

} // namespace
} // namespace grow
