/**
 * @file
 * CPU topology discovery: cpulist grammar, parsing a fabricated sysfs
 * tree (two sockets, two NUMA nodes), node-major compact placement
 * with round-robin wrap, and graceful degradation when the sysfs
 * files are absent.
 */
#include <gtest/gtest.h>

#include "util/topology.hpp"

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <unistd.h>

namespace grow::util {
namespace {

namespace fs = std::filesystem;

TEST(ParseCpuList, HandlesSinglesRangesAndMixes)
{
    EXPECT_EQ(parseCpuList(""), (std::vector<uint32_t>{}));
    EXPECT_EQ(parseCpuList("0"), (std::vector<uint32_t>{0}));
    EXPECT_EQ(parseCpuList("0-3"), (std::vector<uint32_t>{0, 1, 2, 3}));
    EXPECT_EQ(parseCpuList("0-2,8,10-11"),
              (std::vector<uint32_t>{0, 1, 2, 8, 10, 11}));
    EXPECT_EQ(parseCpuList("4\n"), (std::vector<uint32_t>{4}));
}

TEST(ParseCpuList, SkipsMalformedTokens)
{
    // Junk tokens are dropped, valid neighbours survive.
    EXPECT_EQ(parseCpuList("x,2,3-"), (std::vector<uint32_t>{2}));
    EXPECT_EQ(parseCpuList("5-3"), (std::vector<uint32_t>{}));
}

/** Fabricated sysfs: cpus 0-3, packages {0,0,1,1}, nodes {0,0,1,1}. */
class FakeSysfs : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        root_ = fs::temp_directory_path() /
                ("grow-topo-test-" +
                 std::to_string(static_cast<unsigned>(::getpid())));
        fs::remove_all(root_);
        write("devices/system/cpu/online", "0-3\n");
        for (int cpu = 0; cpu < 4; ++cpu)
            write("devices/system/cpu/cpu" + std::to_string(cpu) +
                      "/topology/physical_package_id",
                  std::to_string(cpu / 2) + "\n");
        write("devices/system/node/online", "0-1\n");
        write("devices/system/node/node0/cpulist", "0-1\n");
        write("devices/system/node/node1/cpulist", "2-3\n");
    }

    void TearDown() override { fs::remove_all(root_); }

    void
    write(const std::string &rel, const std::string &content)
    {
        fs::path p = root_ / rel;
        fs::create_directories(p.parent_path());
        std::ofstream(p) << content;
    }

    fs::path root_;
};

TEST_F(FakeSysfs, ParsesPackagesAndNodes)
{
    Topology topo = Topology::parse(root_.string());
    ASSERT_EQ(topo.cpus().size(), 4u);
    EXPECT_EQ(topo.packages(), 2u);
    EXPECT_EQ(topo.nodes(), 2u);
    for (const CpuPlace &p : topo.cpus()) {
        EXPECT_EQ(p.package, p.cpu / 2) << p.cpu;
        EXPECT_EQ(p.node, p.cpu / 2) << p.cpu;
    }
}

TEST_F(FakeSysfs, PlacementIsNodeMajorCompactAndWraps)
{
    Topology topo = Topology::parse(root_.string());
    // Fewer workers than CPUs: fill node 0 first (LLC sharing), never
    // spread across nodes early.
    EXPECT_EQ(topo.placement(2), (std::vector<uint32_t>{0, 1}));
    EXPECT_EQ(topo.placement(3), (std::vector<uint32_t>{0, 1, 2}));
    // More workers than CPUs: round-robin wrap in the same order.
    EXPECT_EQ(topo.placement(6),
              (std::vector<uint32_t>{0, 1, 2, 3, 0, 1}));
    EXPECT_TRUE(topo.placement(0).empty());
}

TEST_F(FakeSysfs, NodeOrderDominatesCpuIdOrder)
{
    // Invert the node mapping: high CPU ids on node 0. Placement must
    // follow nodes, not raw CPU ids.
    write("devices/system/node/node0/cpulist", "2-3\n");
    write("devices/system/node/node1/cpulist", "0-1\n");
    Topology topo = Topology::parse(root_.string());
    EXPECT_EQ(topo.placement(4),
              (std::vector<uint32_t>{2, 3, 0, 1}));
}

TEST(Topology, MissingSysfsDegradesToHardwareConcurrency)
{
    Topology topo = Topology::parse("/nonexistent-sysfs-root");
    const uint32_t hc =
        std::max(1u, std::thread::hardware_concurrency());
    ASSERT_EQ(topo.cpus().size(), hc);
    EXPECT_EQ(topo.nodes(), 1u);
    EXPECT_EQ(topo.packages(), 1u);
    // Degenerate placement is still well-formed.
    auto placed = topo.placement(hc + 1);
    ASSERT_EQ(placed.size(), hc + 1);
    EXPECT_EQ(placed.front(), placed.back());
}

TEST(Topology, HostIsCachedAndNonEmpty)
{
    const Topology &a = Topology::host();
    const Topology &b = Topology::host();
    EXPECT_EQ(&a, &b);
    EXPECT_FALSE(a.cpus().empty());
}

} // namespace
} // namespace grow::util
