/**
 * @file
 * Shared worker pool: caller participation, nested fan-out without
 * deadlock, per-task exception capture, concurrency bounding and the
 * `threads=` validation used by every bench CLI.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "util/work_pool.hpp"

namespace grow::util {
namespace {

TEST(WorkPool, RunsEveryTaskExactlyOnce)
{
    WorkPool pool(3);
    std::vector<std::atomic<int>> hits(64);
    std::vector<std::function<void()>> tasks;
    for (size_t i = 0; i < hits.size(); ++i)
        tasks.emplace_back([&hits, i] { hits[i].fetch_add(1); });
    auto errors = pool.runAll(std::move(tasks));
    ASSERT_EQ(errors.size(), 64u);
    for (const auto &e : errors)
        EXPECT_EQ(e, nullptr);
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(WorkPool, ZeroWorkersRunsOnCaller)
{
    WorkPool pool(0);
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> ran(8);
    std::vector<std::function<void()>> tasks;
    for (size_t i = 0; i < ran.size(); ++i)
        tasks.emplace_back(
            [&ran, i] { ran[i] = std::this_thread::get_id(); });
    pool.runAll(std::move(tasks));
    for (const auto &id : ran)
        EXPECT_EQ(id, caller);
}

TEST(WorkPool, MaxParallelOneIsSerialInTaskOrder)
{
    WorkPool pool(4);
    std::vector<int> order;
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 16; ++i)
        tasks.emplace_back([&order, i] { order.push_back(i); });
    pool.runAll(std::move(tasks), 1);
    std::vector<int> expect(16);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(order, expect);
}

TEST(WorkPool, ConcurrencyNeverExceedsMaxParallel)
{
    WorkPool pool(4);
    std::atomic<int> inFlight{0};
    std::atomic<int> highWater{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 32; ++i) {
        tasks.emplace_back([&] {
            int now = inFlight.fetch_add(1) + 1;
            int seen = highWater.load();
            while (now > seen && !highWater.compare_exchange_weak(seen, now))
                ;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            inFlight.fetch_sub(1);
        });
    }
    pool.runAll(std::move(tasks), 2);
    EXPECT_LE(highWater.load(), 2);
    EXPECT_GE(highWater.load(), 1);
}

TEST(WorkPool, ExceptionsAreCapturedPerTaskAndSiblingsFinish)
{
    WorkPool pool(2);
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) {
        tasks.emplace_back([&ran, i] {
            ran.fetch_add(1);
            if (i % 2 == 1)
                throw std::runtime_error("task " + std::to_string(i));
        });
    }
    auto errors = pool.runAll(std::move(tasks));
    EXPECT_EQ(ran.load(), 8);
    for (int i = 0; i < 8; ++i) {
        if (i % 2 == 1) {
            ASSERT_NE(errors[i], nullptr) << i;
            EXPECT_THROW(std::rethrow_exception(errors[i]),
                         std::runtime_error);
        } else {
            EXPECT_EQ(errors[i], nullptr) << i;
        }
    }
}

TEST(WorkPool, NestedFanOutDoesNotDeadlock)
{
    // Outer tasks saturate the pool, then each fans out again: the
    // nested runAll must drain on the already-occupied workers (caller
    // participation), not wait for free ones.
    WorkPool pool(2);
    std::atomic<int> leaves{0};
    std::vector<std::function<void()>> outer;
    for (int i = 0; i < 6; ++i) {
        outer.emplace_back([&pool, &leaves] {
            std::vector<std::function<void()>> inner;
            for (int j = 0; j < 5; ++j)
                inner.emplace_back([&leaves] { leaves.fetch_add(1); });
            auto errors = pool.runAll(std::move(inner));
            for (const auto &e : errors)
                EXPECT_EQ(e, nullptr);
        });
    }
    pool.runAll(std::move(outer));
    EXPECT_EQ(leaves.load(), 30);
}

TEST(WorkPool, SharedPoolIsAProcessSingleton)
{
    EXPECT_EQ(&WorkPool::shared(), &WorkPool::shared());
    std::atomic<int> hits{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 4; ++i)
        tasks.emplace_back([&hits] { hits.fetch_add(1); });
    WorkPool::shared().runAll(std::move(tasks), 8);
    EXPECT_EQ(hits.load(), 4);
}

TEST(CheckedThreadCount, AcceptsSaneValues)
{
    EXPECT_EQ(checkedThreadCount(1), 1u);
    EXPECT_EQ(checkedThreadCount(2), 2u);
    const uint32_t hw =
        std::max(1u, std::thread::hardware_concurrency());
    EXPECT_EQ(checkedThreadCount(static_cast<int64_t>(hw) * 4),
              hw * 4);
}

TEST(CheckedThreadCount, RejectsZeroNegativeAndSillyValues)
{
    EXPECT_THROW(checkedThreadCount(0), std::runtime_error);
    EXPECT_THROW(checkedThreadCount(-3), std::runtime_error);
    const int64_t hw = std::max(1u, std::thread::hardware_concurrency());
    EXPECT_THROW(checkedThreadCount(hw * 4 + 1), std::runtime_error);
    EXPECT_THROW(checkedThreadCount(1 << 20), std::runtime_error);
}

TEST(WorkPoolDetached, TrySubmitRunsOnAWorker)
{
    WorkPool pool(2);
    std::atomic<int> hits{0};
    const auto caller = std::this_thread::get_id();
    std::atomic<bool> onCaller{false};
    for (int i = 0; i < 32; ++i)
        ASSERT_TRUE(pool.trySubmit([&hits, &onCaller, caller] {
            if (std::this_thread::get_id() == caller)
                onCaller.store(true);
            hits.fetch_add(1);
        }));
    pool.drainDetached();
    EXPECT_EQ(hits.load(), 32);
    EXPECT_FALSE(onCaller.load());
    EXPECT_EQ(pool.detachedPending(), 0u);
}

TEST(WorkPoolDetached, ZeroWorkersRefusesSoCallerRunsInline)
{
    WorkPool pool(0);
    EXPECT_EQ(pool.idleWorkers(), 0u);
    EXPECT_FALSE(pool.trySubmit([] {}));
}

TEST(WorkPoolDetached, DestructorDrainsPendingDetachedWork)
{
    std::atomic<int> hits{0};
    {
        WorkPool pool(2);
        for (int i = 0; i < 16; ++i)
            ASSERT_TRUE(pool.trySubmit([&hits] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                hits.fetch_add(1);
            }));
        // No drain: shutdown ordering must run every accepted task
        // before the workers stop.
    }
    EXPECT_EQ(hits.load(), 16);
}

TEST(WorkPoolDetached, ThrowingTaskIsSwallowedAndCounted)
{
    WorkPool pool(1);
    std::atomic<int> after{0};
    ASSERT_TRUE(
        pool.trySubmit([] { throw std::runtime_error("detached boom"); }));
    ASSERT_TRUE(pool.trySubmit([&after] { after.fetch_add(1); }));
    pool.drainDetached();
    // The throwing task must not take the worker down.
    EXPECT_EQ(after.load(), 1);
    EXPECT_EQ(pool.detachedPending(), 0u);
}

TEST(WorkPoolDetached, DetachedAndTicketBatchesCoexist)
{
    WorkPool pool(3);
    std::atomic<int> detachedHits{0}, batchHits{0};
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(
            pool.trySubmit([&detachedHits] { detachedHits.fetch_add(1); }));
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i)
        tasks.emplace_back([&batchHits] { batchHits.fetch_add(1); });
    pool.runAll(std::move(tasks));
    pool.drainDetached();
    EXPECT_EQ(detachedHits.load(), 8);
    EXPECT_EQ(batchHits.load(), 8);
}

TEST(WorkPoolDetached, IdleWorkersIsBoundedByWorkerCount)
{
    WorkPool pool(2);
    // Racy by design: only the invariant 0 <= idle <= workers holds.
    EXPECT_LE(pool.idleWorkers(), 2u);
}

} // namespace
} // namespace grow::util
