/**
 * @file
 * graph_convert: produce, inspect and verify .growcsr binary graphs
 * (the out-of-core ingestion format of graph/file_graph.hpp).
 *
 * Three modes, selected by which keys are given:
 *
 *   Convert edge-list / COO text to binary CSR:
 *     graph_convert in=<edges.txt> out=<graph.growcsr>
 *                   [name=<dataset>] [scale=<tier>] [nodes=<min>]
 *     Lines are `u v` (or `u v w`, weight ignored); '#'/'%' comments
 *     and blank lines are skipped. The graph is undirected, self loops
 *     dropped, duplicates merged -- identical to Graph::fromEdges.
 *     name= copies the synthesis/shape metadata (feature densities,
 *     GCN shape) of a registry dataset into the file so benches can
 *     build full workloads on it; omitted, a neutral template named
 *     after the output file is used. nodes= forces at least that many
 *     nodes (trailing isolated nodes).
 *
 *   Export a synthesized registry dataset to binary CSR:
 *     graph_convert dataset=<name> scale=<tier> out=<graph.growcsr>
 *     The written file replays the in-memory dataset bit for bit when
 *     loaded via `dataset=file:<path>` (CI diffs the two).
 *
 *   Verify an existing file:
 *     graph_convert verify=<graph.growcsr>
 *     Re-checks header, checksum and full structure (sorted rows,
 *     symmetry, no self loops); exits non-zero on any mismatch.
 */
#include <filesystem>
#include <iostream>

#include "graph/datasets.hpp"
#include "graph/file_graph.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

using namespace grow;

namespace {

int
verifyFile(const std::string &path)
{
    auto g = graph::MappedCsrGraph::open(path);
    if (!g) {
        std::cerr << "FAIL: " << path
                  << " is missing, truncated, corrupt or from a stale "
                     "format version\n";
        return 1;
    }
    if (!g->validateStructure()) {
        std::cerr << "FAIL: " << path
                  << " passed the checksum but is structurally invalid "
                     "(unsorted rows, self loops or asymmetry)\n";
        return 1;
    }
    std::cout << "OK: " << path << "\n  dataset   " << g->spec().name
              << "\n  tier      " << graph::tierName(g->tier())
              << "\n  nodes     " << g->numNodes() << "\n  arcs      "
              << g->numArcs() << "\n  checksum  " << std::hex
              << g->checksum() << std::dec << "\n";
    return 0;
}

int
exportDataset(const CliArgs &args)
{
    const std::string out = args.get("out", "");
    if (out.empty())
        fatal("dataset= mode needs out=<file.growcsr>");
    const auto &spec = graph::datasetByName(args.get("dataset", ""));
    const auto tier =
        graph::tierFromString(args.get("scale", "mini"));
    auto inst = graph::buildDataset(spec, tier);
    if (!graph::writeCsrFile(out, spec, tier, inst.graph.view()))
        return 1;
    std::cout << "wrote " << out << ": " << spec.name << " @ "
              << graph::tierName(tier) << ", " << inst.graph.numNodes()
              << " nodes, " << inst.graph.numArcs() << " arcs\n";
    return 0;
}

int
convertText(const CliArgs &args)
{
    const std::string in = args.get("in", "");
    const std::string out = args.get("out", "");
    if (out.empty())
        fatal("in= mode needs out=<file.growcsr>");
    graph::DatasetSpec tmpl;
    if (args.has("name")) {
        tmpl = graph::datasetByName(args.get("name", ""));
    } else {
        // Neutral template: identity from the output file name, GCN
        // shape/densities that let workload construction proceed.
        tmpl.name = std::filesystem::path(out).stem().string();
        tmpl.x0Density = 1.0;
        tmpl.x1Density = 0.5;
        tmpl.gcn = {128, 128, 16};
    }
    const auto tier =
        graph::tierFromString(args.get("scale", "full"));
    const auto hint =
        static_cast<uint32_t>(args.getInt("nodes", 0));
    auto stats = graph::convertEdgeListFile(in, out, tmpl, tier, hint);
    std::cout << "wrote " << out << ": " << tmpl.name << " @ "
              << graph::tierName(tier) << "\n  nodes          "
              << stats.nodes << "\n  arcs           " << stats.arcs
              << "\n  text edges     " << stats.textEdges
              << "\n  self loops     " << stats.selfLoops
              << "\n  duplicate arcs " << stats.duplicateArcs << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        CliArgs args(argc, argv);
        args.requireKnown(
            {"in", "out", "name", "nodes", "dataset", "scale",
             "verify"});
        if (args.has("verify"))
            return verifyFile(args.get("verify", ""));
        if (args.has("dataset"))
            return exportDataset(args);
        if (args.has("in"))
            return convertText(args);
        fatal("pass in=<edges.txt> out=<file.growcsr>, dataset=<name> "
              "scale=<tier> out=<file.growcsr>, or "
              "verify=<file.growcsr>");
    } catch (const std::exception &e) {
        std::cerr << "graph_convert: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
