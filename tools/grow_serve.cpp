/**
 * @file
 * The GROW serving daemon / deterministic serving simulator.
 *
 * Two modes share the entire serving stack (admission queue,
 * fair-share scheduler, executor, metrics):
 *
 *   mode=socket (default)  Persistent daemon on a Unix-domain socket
 *                          speaking the line-delimited JSON protocol
 *                          (src/serve/protocol.hpp). Runs until
 *                          SIGINT/SIGTERM or a client sends
 *                          `{"cmd":"shutdown"}`; drains admitted work
 *                          before exiting, then emits the serving
 *                          report and digest records.
 *
 *   mode=sim               Deterministic in-process replay of a
 *                          seeded schedule on a virtual clock; service
 *                          time is the simulated inference latency.
 *                          Identical flags produce byte-identical
 *                          reports -- CI gates this mode.
 *
 * Flags (key=value):
 *   mode=socket|sim        see above
 *   socket=<path>          daemon socket path (default grow_serve.sock)
 *   scale=, datasets=, model=  the served universe (datasets=all for
 *                          the whole registry); in mode=sim also the
 *                          schedule draw pools
 *   engines=, requests=, seed=, mean_gap_us=, tenants=name:w,...,
 *   depth=, feature_seed=, deadline_ms=   schedule knobs (mode=sim)
 *   queue_depth=<n>        admission: max queued requests (default 64)
 *   bytebudget=<n>[K|M|G]  admission: in-flight byte budget (0 = off)
 *   default_deadline_ms=<n>  deadline applied when a request has none
 *   inflight=<n>           max concurrently executing requests
 *   slots=<n>              virtual service slots (mode=sim, default 1)
 *   threads=<n>            phase fan-out per inference (default 1)
 *   cachedir=, memcap=     workload-cache disk layer / byte cap
 *   format=, out=          report sink (table|json|csv, default table)
 *   records_out=<path>     canonical digest records (byte-identity gate)
 */

#include <csignal>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "driver/workload_cache.hpp"
#include "graph/datasets.hpp"
#include "report/report.hpp"
#include "report/sinks.hpp"
#include "serve/executor.hpp"
#include "serve/metrics.hpp"
#include "serve/schedule.hpp"
#include "serve/server.hpp"
#include "serve/virtual_serve.hpp"
#include "serve_common.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/work_pool.hpp"

namespace {

std::atomic<int> gSignal{0};

void
onSignal(int sig)
{
    gSignal.store(sig, std::memory_order_relaxed);
}

std::vector<grow::graph::DatasetSpec>
resolveDatasets(const std::vector<std::string> &names)
{
    if (names.size() == 1 && names[0] == "all")
        return grow::graph::allDatasets();
    std::vector<grow::graph::DatasetSpec> specs;
    for (const std::string &name : names)
        specs.push_back(grow::graph::datasetByName(name));
    return specs;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace grow;

    CliArgs args(argc, argv);
    std::vector<std::string> known = {
        "mode",     "socket",   "inflight", "slots",
        "threads",  "cachedir", "memcap",   "format",
        "out",      "records_out"};
    for (const std::string &k : serve::scheduleKeys())
        known.push_back(k);
    for (const std::string &k : serve::admissionKeys())
        known.push_back(k);
    args.requireKnown(known);

    const std::string mode = args.get("mode", "socket");
    if (mode != "socket" && mode != "sim")
        fatal("mode must be socket or sim, got '" + mode + "'");

    const serve::AdmissionConfig admission =
        serve::admissionFromArgs(args);

    driver::WorkloadCache cache(args.get("cachedir", ""));
    if (args.has("memcap"))
        cache.setMemoryByteCap(
            parseByteSize("memcap", args.get("memcap", "")));

    const auto specs = resolveDatasets(args.getList(
        "datasets", {mode == "sim" ? "cora" : "all"}));
    const uint32_t threads =
        static_cast<uint32_t>(args.getInt("threads", 1));
    serve::Executor executor(cache, specs, threads);
    serve::ServeMetrics metrics;

    report::ReportMeta meta;
    meta.generator = "grow-serve";
    meta.bench = mode == "sim" ? "serve_sim" : "serve_daemon";
    meta.revision = report::buildRevision();
    meta.scale = args.get("scale", "mini");
    meta.model = args.get("model", "gcn");
    report::Report rep(meta);

    std::vector<serve::RequestRecord> records;
    if (mode == "sim") {
        const auto schedule =
            serve::buildSchedule(serve::scheduleFromArgs(args));
        serve::VirtualServeConfig config;
        config.admission = admission;
        config.slots = static_cast<uint32_t>(args.getInt("slots", 1));
        serve::VirtualServeResult result =
            serve::runVirtualServe(schedule, &executor, config, &metrics);
        records = std::move(result.records);
        rep.note("grow_serve mode=sim: " +
                 std::to_string(schedule.size()) + " scheduled requests, " +
                 std::to_string(config.slots) + " slot(s), virtual end " +
                 std::to_string(result.endUs) + " us");
    } else {
        serve::ServerConfig config;
        config.socketPath = args.get("socket", "grow_serve.sock");
        config.admission = admission;
        config.maxInflight =
            static_cast<uint32_t>(args.getInt("inflight", 2));
        config.pool = &util::WorkPool::shared();
        serve::ServeDaemon daemon(executor, config, metrics);
        std::string error;
        if (!daemon.start(&error))
            fatal("grow_serve: " + error);
        logInfo("grow_serve: listening on " + config.socketPath);

        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        while (gSignal.load(std::memory_order_relaxed) == 0 &&
               !daemon.stopping())
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        daemon.requestStop();
        daemon.wait();
        records = daemon.records();
        rep.note("grow_serve mode=socket: drained after " +
                 std::string(gSignal.load() ? "signal" : "shutdown command"));
    }

    const auto snapshot = cache.snapshot();
    metrics.fillReport(rep, &snapshot);
    report::emitReport(rep, args.get("format", "table"),
                       args.get("out", ""));
    if (args.has("records_out"))
        serve_tool::writeDigestRecords(args.get("records_out", ""),
                                       records);
    return 0;
}
