/**
 * @file
 * report_check: schema validator for the structured report JSON
 * (src/report/json.hpp). CI runs it against BENCH_GROW.json before
 * uploading the perf-trajectory artifact, so a record missing required
 * keys -- or a report written under a different schema version --
 * fails the job instead of silently corrupting the trajectory.
 *
 * Usage: report_check in=BENCH_GROW.json [min_records=1]
 *
 * Exit 0 iff the file parses, validates against this build's
 * kReportSchemaVersion and carries at least min_records records.
 */
#include <fstream>
#include <iostream>
#include <sstream>

#include "report/json.hpp"
#include "report/report.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

using namespace grow;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    args.requireKnown({"in", "min_records"});
    const std::string path = args.get("in", "");
    if (path.empty())
        fatal("usage: report_check in=<report.json> [min_records=1]");
    const int64_t minRecords = args.getInt("min_records", 1);

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "report_check: cannot read " << path << "\n";
        return 1;
    }
    std::ostringstream oss;
    oss << in.rdbuf();

    report::JsonValue root;
    std::string error;
    if (!report::parseJson(oss.str(), root, &error)) {
        std::cerr << "report_check: " << path << ": JSON parse error: "
                  << error << "\n";
        return 1;
    }
    std::vector<std::string> errors;
    if (!report::validateReportJson(root, errors)) {
        std::cerr << "report_check: " << path << ": "
                  << errors.size() << " schema violation(s):\n";
        for (const auto &msg : errors)
            std::cerr << "  - " << msg << "\n";
        return 1;
    }
    const auto &records = root.find("records")->arr;
    if (static_cast<int64_t>(records.size()) < minRecords) {
        std::cerr << "report_check: " << path << ": only "
                  << records.size() << " record(s), expected >= "
                  << minRecords << "\n";
        return 1;
    }
    std::cout << "report_check: " << path << ": OK (schema "
              << report::kReportSchemaVersion << ", " << records.size()
              << " records, bench '" << root.find("bench")->str
              << "')\n";
    return 0;
}
