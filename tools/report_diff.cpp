/**
 * @file
 * report_diff: the CI perf-regression gate over two BENCH_GROW.json
 * perf-trajectory files (src/report/diff.hpp).
 *
 * Usage:
 *   report_diff base=main/BENCH_GROW.json current=build/BENCH_GROW.json
 *               [history=bench/history] [tol=0.0] [gate=cycles,bytes]
 *               [tol.<metric-or-unit>=pct ...] [max_lines=40]
 *
 * Joins the two files on the canonical (bench, table, row-dims,
 * metric) record key, prints every per-metric delta (worst first) and
 * the added/removed record summary.
 *
 * `tol.<name>=` keys are repeatable per-metric tolerance overrides
 * (name = metric name or unit; metric wins). An override also gates
 * its metric even when the unit is outside `gate=` -- e.g.
 * `tol.rows/s=0.15` gates the sim-speed family at 15% while cycles
 * stay at the tight default.
 *
 * `history=` names the committed perf-trajectory directory
 * (bench/history/): when `base=` is absent, the lexically newest
 * *.json there becomes the baseline. No baseline at all skips the
 * gate (exit 0) -- a first run must not fail CI.
 *
 * Exit codes:
 *   0  no gated metric drifted beyond `tol` (other drift is reported
 *      but does not fail the gate), or no baseline available
 *   1  at least one gated regression
 *   2  usage error, unreadable file, JSON parse or schema failure
 */
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "report/diff.hpp"
#include "report/json.hpp"
#include "report/report.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"

using namespace grow;

namespace {

int
loadReport(const std::string &path, report::JsonValue &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "report_diff: cannot read " << path << "\n";
        return 2;
    }
    std::ostringstream oss;
    oss << in.rdbuf();
    std::string error;
    if (!report::parseJson(oss.str(), out, &error)) {
        std::cerr << "report_diff: " << path
                  << ": JSON parse error: " << error << "\n";
        return 2;
    }
    std::vector<std::string> errors;
    if (!report::validateReportJson(out, errors)) {
        std::cerr << "report_diff: " << path << ": " << errors.size()
                  << " schema violation(s):\n";
        for (const auto &msg : errors)
            std::cerr << "  - " << msg << "\n";
        return 2;
    }
    return 0;
}

/** Lexically newest *.json under @p dir, or "" when none/unreadable.
 *  History snapshots are date-prefixed, so lexical == chronological. */
std::string
newestHistoryFile(const std::string &dir)
{
    std::error_code ec;
    std::string best;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file())
            continue;
        const std::string path = entry.path().string();
        if (entry.path().extension() != ".json")
            continue;
        if (path > best)
            best = path;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        CliArgs args(argc, argv);
        args.requireKnown(
            {"base", "current", "history", "tol", "gate", "max_lines"},
            {"tol."});
        std::string basePath = args.get("base", "");
        const std::string currPath = args.get("current", "");
        const std::string historyDir = args.get("history", "");
        if (currPath.empty() ||
            (basePath.empty() && historyDir.empty())) {
            std::cerr << "usage: report_diff base=<old.json> "
                         "current=<new.json> [history=<dir>] [tol=0.0] "
                         "[gate=cycles,bytes] [tol.<metric>=pct ...] "
                         "[max_lines=40]\n";
            return 2;
        }
        if (basePath.empty()) {
            basePath = newestHistoryFile(historyDir);
            if (basePath.empty()) {
                std::cout << "report_diff: no baseline in " << historyDir
                          << "; gate skipped (first run)\n";
                return 0;
            }
            std::cout << "report_diff: baseline from committed history: "
                      << basePath << "\n";
        }

        report::DiffOptions options;
        options.relTolerance = args.getDouble("tol", 0.0);
        if (options.relTolerance < 0) {
            std::cerr << "report_diff: tol must be >= 0\n";
            return 2;
        }
        options.gateUnits = args.getList("gate", {"cycles", "bytes"});
        for (const auto &[name, text] : args.withPrefix("tol.")) {
            char *end = nullptr;
            const double tol = std::strtod(text.c_str(), &end);
            if (end == text.c_str() || *end != '\0' || tol < 0) {
                std::cerr << "report_diff: tol." << name
                          << " must be a fraction >= 0, got '" << text
                          << "'\n";
                return 2;
            }
            options.tolOverrides[name] = tol;
        }
        const int64_t maxLines = args.getInt("max_lines", 40);
        if (maxLines < 0) {
            std::cerr << "report_diff: max_lines must be >= 0\n";
            return 2;
        }

        report::JsonValue base, current;
        if (int rc = loadReport(basePath, base))
            return rc;
        if (int rc = loadReport(currPath, current))
            return rc;

        auto result = report::diffReports(base, current, options);
        std::cout << report::formatDiff(result, options,
                                        static_cast<size_t>(maxLines));
        if (result.joined == 0) {
            // Nothing joined means the gate compared nothing -- that
            // is a configuration problem (wrong files), not a pass.
            std::cerr << "report_diff: no records joined between "
                      << basePath << " and " << currPath << "\n";
            return 2;
        }
        return result.regressions > 0 ? 1 : 0;
    } catch (const std::exception &e) {
        std::cerr << "report_diff: " << e.what() << "\n";
        return 2;
    }
}
