/**
 * @file
 * Helpers shared by the serving binaries (grow_serve, serve_load) and
 * the batched_serving example. The schedule/admission option grammar
 * lives in src/serve/options.hpp (serve::scheduleKeys,
 * serve::scheduleFromArgs, serve::admissionFromArgs); this header only
 * keeps the canonical digest-record file both sides of the CI
 * byte-identity gate write.
 */
#pragma once

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "serve/options.hpp"
#include "serve/protocol.hpp"
#include "serve/request.hpp"
#include "util/logging.hpp"

namespace grow::serve_tool {

/**
 * Write the canonical digest-record file: one digestLine per
 * Completed record, sorted by request id so arrival pacing and
 * resolution order never affect the bytes. The CI serving gate diffs
 * these files between daemon-served, client-observed and direct runs.
 */
inline void
writeDigestRecords(const std::string &path,
                   const std::vector<serve::RequestRecord> &records)
{
    std::vector<const serve::RequestRecord *> completed;
    for (const serve::RequestRecord &r : records)
        if (r.status == serve::RequestStatus::Completed)
            completed.push_back(&r);
    std::sort(completed.begin(), completed.end(),
              [](const serve::RequestRecord *a,
                 const serve::RequestRecord *b) {
                  return a->request.id < b->request.id;
              });
    std::ofstream out(path);
    if (!out)
        fatal("cannot write records file '" + path + "'");
    for (const serve::RequestRecord *r : completed)
        out << serve::digestLine(r->request, r->digest) << "\n";
}

} // namespace grow::serve_tool
