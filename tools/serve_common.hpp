/**
 * @file
 * Helpers shared by the serving binaries (grow_serve, serve_load) and
 * the batched_serving example: schedule construction from `key=value`
 * flags and the canonical digest-record file both sides of the CI
 * byte-identity gate write.
 */
#pragma once

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/request.hpp"
#include "serve/schedule.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

namespace grow::serve_tool {

/** Parse a byte size: digits with an optional K/M/G suffix. */
inline uint64_t
parseByteSize(const std::string &key, const std::string &s)
{
    if (s.empty())
        fatal(key + " needs a byte size (e.g. " + key + "=512M)");
    uint64_t mult = 1;
    std::string digits = s;
    switch (s.back()) {
      case 'k': case 'K': mult = 1ull << 10; break;
      case 'm': case 'M': mult = 1ull << 20; break;
      case 'g': case 'G': mult = 1ull << 30; break;
      default: break;
    }
    if (mult != 1)
        digits.pop_back();
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
        fatal(key + " must be <digits>[K|M|G], got '" + s + "'");
    return std::stoull(digits) * mult;
}

/** The schedule flags shared by grow_serve mode=sim and serve_load. */
inline const std::vector<std::string> &
scheduleKeys()
{
    static const std::vector<std::string> keys = {
        "requests", "seed",  "mean_gap_us", "tenants",     "datasets",
        "engines",  "model", "scale",       "depth",       "feature_seed",
        "deadline_ms"};
    return keys;
}

/** Build a ScheduleConfig from parsed flags (defaults per field). */
inline serve::ScheduleConfig
scheduleFromArgs(const CliArgs &args)
{
    serve::ScheduleConfig config;
    config.seed = static_cast<uint64_t>(args.getInt("seed", 7));
    config.count = static_cast<uint32_t>(args.getInt("requests", 32));
    config.meanGapUs = args.getInt("mean_gap_us", 2000);
    if (args.has("tenants")) {
        std::string error;
        if (!serve::parseTenantMix(args.get("tenants", ""), config.tenants,
                                   &error))
            fatal("tenants=: " + error);
    }
    config.datasets = args.getList("datasets", {"cora"});
    config.engines = args.getList("engines", {"grow"});
    config.model = args.get("model", "gcn");
    config.tier = graph::tierFromString(args.get("scale", "mini"));
    config.depth = static_cast<uint32_t>(args.getInt("depth", 2));
    config.featureSeedBase =
        static_cast<uint64_t>(args.getInt("feature_seed", 7));
    config.deadlineRelUs = args.getInt("deadline_ms", 0) * 1000;
    return config;
}

/**
 * Write the canonical digest-record file: one digestLine per
 * Completed record, sorted by request id so arrival pacing and
 * resolution order never affect the bytes. The CI serving gate diffs
 * these files between daemon-served, client-observed and direct runs.
 */
inline void
writeDigestRecords(const std::string &path,
                   const std::vector<serve::RequestRecord> &records)
{
    std::vector<const serve::RequestRecord *> completed;
    for (const serve::RequestRecord &r : records)
        if (r.status == serve::RequestStatus::Completed)
            completed.push_back(&r);
    std::sort(completed.begin(), completed.end(),
              [](const serve::RequestRecord *a,
                 const serve::RequestRecord *b) {
                  return a->request.id < b->request.id;
              });
    std::ofstream out(path);
    if (!out)
        fatal("cannot write records file '" + path + "'");
    for (const serve::RequestRecord *r : completed)
        out << serve::digestLine(r->request, r->digest) << "\n";
}

} // namespace grow::serve_tool
