/**
 * @file
 * Load generator / client for the GROW serving daemon.
 *
 * Replays the same seeded deterministic schedule grow_serve mode=sim
 * replays, but over the wire:
 *
 *   mode=closed (default)  Closed loop: keep `concurrency=` requests
 *                          outstanding on one connection; each
 *                          response triggers the next send. Arrival
 *                          times in the schedule are ignored.
 *   mode=open              Open loop: send each request at its
 *                          scheduled time regardless of responses
 *                          (backpressure shows up as rejections).
 *   mode=direct            No daemon: execute the identical schedule
 *                          in-process (virtual clock, one slot). The
 *                          digest records must match a daemon-served
 *                          run byte for byte -- the CI equivalence
 *                          gate diffs exactly that.
 *
 * Flags (key=value):
 *   socket=<path>          daemon socket (default grow_serve.sock)
 *   concurrency=<n>        closed-loop window (default 4)
 *   connect_timeout_s=<n>  retry budget while the daemon starts
 *   shutdown=0|1           send {"cmd":"shutdown"} when done
 *   requests=, seed=, mean_gap_us=, tenants=, datasets=, engines=,
 *   model=, scale=, depth=, feature_seed=, deadline_ms=
 *                          schedule knobs (identical to grow_serve)
 *   cachedir=, memcap=, threads=   mode=direct execution knobs
 *   format=, out=          client-side report sink
 *   records_out=<path>     canonical digest records
 *
 * Exit status is non-zero when any protocol error occurred or any
 * response went missing, so CI can gate on a clean run.
 */

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "driver/workload_cache.hpp"
#include "graph/datasets.hpp"
#include "report/report.hpp"
#include "report/sinks.hpp"
#include "serve/executor.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/schedule.hpp"
#include "serve/virtual_serve.hpp"
#include "serve_common.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

namespace {

using namespace grow;

/** Connect to @p path, retrying until @p timeout_s while the daemon
 *  finishes starting. Returns -1 on timeout. */
int
connectWithRetry(const std::string &path, double timeout_s)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_s);
    for (;;) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            fatal(std::string("socket(): ") + std::strerror(errno));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return fd;
        ::close(fd);
        if (std::chrono::steady_clock::now() >= deadline)
            return -1;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
}

bool
sendLine(int fd, const std::string &line)
{
    std::string framed = line;
    framed.push_back('\n');
    size_t off = 0;
    while (off < framed.size()) {
        ssize_t n = ::send(fd, framed.data() + off, framed.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

/** Blocking buffered line reader over one socket. */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    /** False on EOF/error with no complete line left. */
    bool
    next(std::string &line)
    {
        for (;;) {
            size_t nl = buffer_.find('\n');
            if (nl != std::string::npos) {
                line = buffer_.substr(0, nl);
                buffer_.erase(0, nl + 1);
                return true;
            }
            char chunk[4096];
            ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            if (n == 0)
                return false;
            buffer_.append(chunk, static_cast<size_t>(n));
        }
    }

  private:
    int fd_;
    std::string buffer_;
};

/** True when @p line is a {"cmd":...} control response (pong/ack). */
bool
isControlLine(const std::string &line)
{
    return line.find("\"cmd\"") != std::string::npos;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    std::vector<std::string> known = {
        "mode",   "socket", "concurrency", "connect_timeout_s",
        "shutdown", "cachedir", "memcap",  "threads",
        "format", "out",    "records_out"};
    for (const std::string &k : serve::scheduleKeys())
        known.push_back(k);
    args.requireKnown(known);

    const std::string mode = args.get("mode", "closed");
    if (mode != "closed" && mode != "open" && mode != "direct")
        fatal("mode must be closed, open or direct, got '" + mode + "'");

    const serve::ScheduleConfig scheduleConfig =
        serve::scheduleFromArgs(args);
    const auto schedule = serve::buildSchedule(scheduleConfig);

    serve::ServeMetrics metrics;
    std::vector<serve::RequestRecord> records;
    uint64_t missing = 0;

    if (mode == "direct") {
        driver::WorkloadCache cache(args.get("cachedir", ""));
        if (args.has("memcap"))
            cache.setMemoryByteCap(parseByteSize(
                "memcap", args.get("memcap", "")));
        std::vector<graph::DatasetSpec> specs;
        for (const std::string &name : scheduleConfig.datasets)
            specs.push_back(graph::datasetByName(name));
        serve::Executor executor(
            cache, specs,
            static_cast<uint32_t>(args.getInt("threads", 1)));
        serve::VirtualServeConfig config;
        // Generous admission: direct mode measures the simulator, not
        // the queue, so nothing may be shed.
        config.admission.maxDepth = std::max<uint32_t>(
            64, static_cast<uint32_t>(schedule.size()));
        serve::VirtualServeResult result =
            serve::runVirtualServe(schedule, &executor, config, &metrics);
        records = std::move(result.records);
    } else {
        const std::string path = args.get("socket", "grow_serve.sock");
        int fd = connectWithRetry(
            path, args.getDouble("connect_timeout_s", 10.0));
        if (fd < 0)
            fatal("serve_load: cannot connect to '" + path + "'");

        const size_t total = schedule.size();
        size_t resolved = 0;
        LineReader reader(fd);
        std::thread sender;

        auto handleLine = [&](const std::string &line) {
            if (isControlLine(line))
                return;
            serve::RequestRecord rec;
            std::string error;
            if (!serve::parseResponse(line, rec, &error)) {
                metrics.recordProtocolError();
                logError("serve_load: bad response: " + error);
            } else {
                metrics.recordOutcome(rec);
                records.push_back(std::move(rec));
            }
            ++resolved;
        };

        if (mode == "open") {
            // Sender paces the schedule on the host clock; the main
            // thread drains responses.
            sender = std::thread([&] {
                const auto start = std::chrono::steady_clock::now();
                for (const serve::ScheduledRequest &sr : schedule) {
                    std::this_thread::sleep_until(
                        start + std::chrono::microseconds(sr.atUs));
                    if (!sendLine(fd, serve::encodeRequest(sr.request)))
                        break;
                }
            });
            std::string line;
            while (resolved < total && reader.next(line))
                handleLine(line);
            sender.join();
        } else {
            const size_t window = std::max<int64_t>(
                1, args.getInt("concurrency", 4));
            size_t sent = 0, outstanding = 0;
            std::string line;
            while (resolved < total) {
                while (outstanding < window && sent < total) {
                    if (!sendLine(fd, serve::encodeRequest(
                                          schedule[sent].request)))
                        fatal("serve_load: send failed");
                    ++sent;
                    ++outstanding;
                }
                if (!reader.next(line))
                    break;
                const size_t before = resolved;
                handleLine(line);
                if (resolved > before && outstanding > 0)
                    --outstanding;
            }
        }
        missing = total - resolved;

        if (args.getBool("shutdown", false)) {
            sendLine(fd, serve::encodeShutdown());
            std::string line;
            reader.next(line); // best-effort ack
        }
        ::close(fd);
    }

    report::ReportMeta meta;
    meta.generator = "grow-serve";
    meta.bench = "serve_load_" + mode;
    meta.revision = report::buildRevision();
    meta.scale = graph::tierName(scheduleConfig.tier);
    meta.model = scheduleConfig.model;
    report::Report rep(meta);
    rep.note("serve_load mode=" + mode + ": " +
             std::to_string(schedule.size()) + " requests, " +
             std::to_string(missing) + " missing, " +
             std::to_string(metrics.protocolErrors()) +
             " protocol errors");
    metrics.fillReport(rep, nullptr);
    report::emitReport(rep, args.get("format", "table"),
                       args.get("out", ""));
    if (args.has("records_out"))
        serve_tool::writeDigestRecords(args.get("records_out", ""),
                                       records);

    return (missing > 0 || metrics.protocolErrors() > 0) ? 1 : 0;
}
